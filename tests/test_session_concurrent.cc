// Concurrency contract of the thread-safe Session, designed to run under
// ThreadSanitizer (the CI tsan job builds exactly this suite with -fsanitize=thread):
//   * N threads x M mixed requests against one Session return plans byte-identical to
//     a fresh single-threaded search, and the counters balance exactly --
//     hits + misses + coalesced == completed requests, misses == distinct keys;
//   * K threads racing one cold key trigger exactly one search (single-flight), with
//     the leader held mid-flight until every rider has coalesced, so the split is
//     deterministic: 1 miss, K-1 coalesced, 0 hits;
//   * a failing leader hands every rider the same Status and does not poison the key:
//     the next request searches afresh;
//   * eviction churn (a capacity far below the working set) keeps the counter
//     invariant and byte-identical plans;
//   * a concurrent memory-budget ladder (distinct plan-cache keys, shared step-table
//     cache) returns plans byte-identical to fresh single-threaded searches no matter
//     which thread warms the compilation cache first;
//   * hybrid (kHybrid) and pure (kTofu) requests racing on one graph stay on their own
//     cache keys with byte-identical deterministic plans, sharing the step-table cache.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "tofu/core/session.h"
#include "tofu/models/mlp.h"
#include "tofu/partition/plan_io.h"

namespace tofu {
namespace {

// The mixed workload: structurally distinct small MLPs, each its own cache key.
std::vector<ModelGraph> DistinctModels() {
  std::vector<ModelGraph> models;
  for (std::int64_t width : {32, 48, 64, 96, 128, 160}) {
    MlpConfig config;
    config.layer_sizes = {width * 2, width, 10};
    config.batch = 16;
    models.push_back(BuildMlp(config));
  }
  return models;
}

// Canonical serialization for byte-comparison; wall time is the one legitimately
// nondeterministic field of a searched plan.
std::string PlanBytes(const PartitionResponse& response) {
  PartitionPlan plan = response.plan;
  plan.search_stats.wall_seconds = 0.0;
  return PlanToJson(plan);
}

TEST(SessionConcurrent, MixedRequestsAreByteIdenticalWithBalancedCounters) {
  std::vector<ModelGraph> models = DistinctModels();

  // Ground truth: a fresh single-threaded session per model.
  std::vector<std::string> expected;
  for (ModelGraph& model : models) {
    Session solo(DeviceTopology::Uniform(4));
    PartitionRequest request;
    request.graph = &model.graph;
    Result<PartitionResponse> response = solo.Partition(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    expected.push_back(PlanBytes(*response));
  }

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 24;
  Session session(DeviceTopology::Uniform(4));
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        // Deterministic mixed schedule: every thread walks the models with a
        // different stride so identical keys collide across threads constantly.
        ModelGraph& model = models[(t * 7 + i) % models.size()];
        PartitionRequest request;
        request.graph = &model.graph;
        Result<PartitionResponse> response = session.Partition(request);
        if (!response.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (PlanBytes(*response) != expected[(t * 7 + i) % models.size()]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  const PlanCacheStats stats = session.cache_stats();
  // Every request is a hit, a miss, or a coalesced rider -- exactly one of the three,
  // with no lost counter updates.
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
            static_cast<std::int64_t>(kThreads) * kRequestsPerThread);
  // Single-flight + capacity above the working set: each distinct key pays for
  // exactly one search, no matter how the threads interleave.
  EXPECT_EQ(stats.misses, static_cast<std::int64_t>(models.size()));
  EXPECT_EQ(stats.collisions, 0);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(SessionConcurrent, SingleFlightRunsExactlyOneSearchForRacingThreads) {
  constexpr int kRacers = 6;
  std::vector<ModelGraph> models = DistinctModels();
  ModelGraph& model = models[0];
  Session session(DeviceTopology::Uniform(4));

  // Hold the (single) leader mid-flight until every other racer has joined the
  // flight, making the hit/miss/coalesced split deterministic instead of a race.
  std::atomic<int> searches{0};
  session.SetSearchStartHookForTesting([&](const std::string&) {
    searches.fetch_add(1);
    while (session.cache_stats().coalesced < kRacers - 1) {
      std::this_thread::yield();
    }
  });

  std::atomic<int> coalesced_responses{0};
  std::atomic<int> fresh_responses{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> racers;
  for (int t = 0; t < kRacers; ++t) {
    racers.emplace_back([&]() {
      PartitionRequest request;
      request.graph = &model.graph;
      Result<PartitionResponse> response = session.Partition(request);
      if (!response.ok()) {
        failures.fetch_add(1);
        return;
      }
      if (response->coalesced) coalesced_responses.fetch_add(1);
      if (!response->coalesced && !response->from_cache) fresh_responses.fetch_add(1);
    });
  }
  for (std::thread& racer : racers) racer.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(searches.load(), 1);  // one search total, not one per racer
  EXPECT_EQ(fresh_responses.load(), 1);
  EXPECT_EQ(coalesced_responses.load(), kRacers - 1);
  const PlanCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.coalesced, kRacers - 1);
  EXPECT_EQ(stats.hits, 0);
}

TEST(SessionConcurrent, FailedLeaderSharesStatusAndDoesNotPoisonTheKey) {
  constexpr int kRacers = 6;
  std::vector<ModelGraph> models = DistinctModels();
  ModelGraph& model = models[0];
  const std::string original_type = model.graph.op(0).type;
  model.graph.op(0).type = "nonexistent_op";  // registry scan will fail the search
  Session session(DeviceTopology::Uniform(4));
  session.SetSearchStartHookForTesting([&](const std::string&) {
    while (session.cache_stats().coalesced < kRacers - 1) {
      std::this_thread::yield();
    }
  });

  std::vector<Status> statuses(kRacers);
  std::vector<std::thread> racers;
  for (int t = 0; t < kRacers; ++t) {
    racers.emplace_back([&, t]() {
      PartitionRequest request;
      request.graph = &model.graph;
      Result<PartitionResponse> response = session.Partition(request);
      statuses[t] = response.status();
    });
  }
  for (std::thread& racer : racers) racer.join();

  // Leader and every rider see the same failure.
  for (const Status& status : statuses) {
    EXPECT_EQ(status.code(), StatusCode::kNotFound);
    EXPECT_EQ(status.message(), statuses[0].message());
  }
  PlanCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.coalesced, kRacers - 1);

  // The error was not cached: a later identical request runs a fresh search (which
  // fails the same way) rather than replaying a poisoned entry -- and once the graph
  // is healed, the same key searches successfully.
  session.SetSearchStartHookForTesting(nullptr);
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> retry = session.Partition(request);
  ASSERT_FALSE(retry.ok());
  EXPECT_EQ(retry.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(session.cache_stats().misses, 2);  // it searched again

  model.graph.op(0).type = original_type;  // heal the graph
  Result<PartitionResponse> healed = session.Partition(request);
  EXPECT_TRUE(healed.ok()) << healed.status().ToString();
}

TEST(SessionConcurrent, EvictionChurnKeepsInvariantAndDeterminism) {
  std::vector<ModelGraph> models = DistinctModels();
  std::vector<std::string> expected;
  for (ModelGraph& model : models) {
    Session solo(DeviceTopology::Uniform(4));
    PartitionRequest request;
    request.graph = &model.graph;
    Result<PartitionResponse> response = solo.Partition(request);
    ASSERT_TRUE(response.ok());
    expected.push_back(PlanBytes(*response));
  }

  // Capacity 2 under a 6-key working set: constant eviction and re-search.
  constexpr int kThreads = 6;
  constexpr int kRequestsPerThread = 12;
  Session session(DeviceTopology::Uniform(4), /*max_cached_plans=*/2,
                  /*cache_shards=*/4);
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const size_t pick = (t * 5 + i * 3) % models.size();
        PartitionRequest request;
        request.graph = &models[pick].graph;
        Result<PartitionResponse> response = session.Partition(request);
        if (!response.ok()) {
          failures.fetch_add(1);
        } else if (PlanBytes(*response) != expected[pick]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const PlanCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
            static_cast<std::int64_t>(kThreads) * kRequestsPerThread);
  EXPECT_GT(stats.evictions, 0);
  // Evicted keys re-search, so misses exceed the distinct-key count here.
  EXPECT_GE(stats.misses, static_cast<std::int64_t>(models.size()));
}

TEST(SessionConcurrent, ConcurrentBudgetLadderSharesStepTablesDeterministically) {
  // Different budgets against one graph are distinct plan-cache keys, so every thread
  // genuinely searches -- all of them hitting the session's shared step-table cache
  // (partition/dp.h), whose concurrent lookup/insert/merge this exercises under TSan.
  // Plans must stay byte-identical to fresh single-threaded searches regardless of
  // which thread warmed the cache first.
  MlpConfig config;
  config.layer_sizes = {256, 256, 64};
  config.batch = 32;
  ModelGraph model = BuildMlp(config);
  Session probe(DeviceTopology::Uniform(4));
  PartitionRequest unbudgeted;
  unbudgeted.graph = &model.graph;
  Result<PartitionResponse> base = probe.Partition(unbudgeted);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const std::int64_t all = base->all_resident_bytes;
  const std::int64_t budgets[] = {0, all, all * 7 / 8, all * 3 / 4, all * 5 / 8};

  std::vector<std::string> expected;
  for (std::int64_t budget : budgets) {
    Session solo(DeviceTopology::Uniform(4));
    PartitionRequest request;
    request.graph = &model.graph;
    request.memory_budget_bytes = budget;
    Result<PartitionResponse> response = solo.Partition(request);
    ASSERT_TRUE(response.ok()) << "budget=" << budget;
    expected.push_back(PlanBytes(*response));
  }

  Session session(DeviceTopology::Uniform(4));
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < std::size(budgets); ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 4; ++i) {
        const size_t pick = (t + i) % std::size(budgets);
        PartitionRequest request;
        request.graph = &model.graph;
        request.memory_budget_bytes = budgets[pick];
        Result<PartitionResponse> response = session.Partition(request);
        if (!response.ok()) {
          failures.fetch_add(1);
        } else if (PlanBytes(*response) != expected[pick]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // Every rung after the first reused the shared compilation.
  EXPECT_GT(session.step_table_cache_stats().hits, 0u);
}

TEST(SessionConcurrent, HybridAndPureRequestsRaceWithoutCrossTalk) {
  // kHybrid and kTofu against the same graph are distinct cache keys (the algorithm is
  // part of the key), and the hybrid search runs the SAME inner recursive DP against
  // the shared step-table cache. Threads alternating both algorithms must get plans
  // byte-identical to fresh single-threaded sessions -- no hybrid response ever leaking
  // from a pure key or vice versa, no matter who populates which cache first.
  MlpConfig config;
  config.layer_sizes = {4, 4, 4, 4, 4, 4, 4, 4};
  config.batch = 8;
  ModelGraph model = BuildMlp(config);
  const PartitionAlgorithm algorithms[] = {PartitionAlgorithm::kTofu,
                                           PartitionAlgorithm::kHybrid};
  // Budget 150 forces the hybrid search into a real multi-stage pipeline on this graph
  // (tests/test_pipeline.cc pins the goldens); the pure search runs unconstrained --
  // the session would reject a pure plan at this budget (its liveness floor is 192
  // bytes, which is the point of the hybrid escape hatch). Maximally different plans.
  const std::int64_t budgets[] = {0, 150};

  std::string expected[2];
  for (int a = 0; a < 2; ++a) {
    Session solo(DeviceTopology::Uniform(32));
    PartitionRequest request;
    request.graph = &model.graph;
    request.algorithm = algorithms[a];
    request.memory_budget_bytes = budgets[a];
    Result<PartitionResponse> response = solo.Partition(request);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    expected[a] = PlanBytes(*response);
  }
  ASSERT_NE(expected[0], expected[1]);

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 8;
  Session session(DeviceTopology::Uniform(32));
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const int pick = (t + i) % 2;
        PartitionRequest request;
        request.graph = &model.graph;
        request.algorithm = algorithms[pick];
        request.memory_budget_bytes = budgets[pick];
        Result<PartitionResponse> response = session.Partition(request);
        if (!response.ok()) {
          failures.fetch_add(1);
        } else if (PlanBytes(*response) != expected[pick]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const PlanCacheStats stats = session.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.coalesced,
            static_cast<std::int64_t>(kThreads) * kRequestsPerThread);
  EXPECT_EQ(stats.misses, 2);  // one search per algorithm, single-flight absorbs races
}

}  // namespace
}  // namespace tofu
