// Recursive-partition tests (paper §5.2 + appendix): factorization, 1/k memory sharding,
// Theorem 2 monotonicity of weighted step costs, flat-DP agreement on small graphs, and
// non-power-of-two worker counts.
#include <gtest/gtest.h>

#include "tofu/models/mlp.h"
#include "tofu/models/rnn.h"
#include "tofu/partition/flat_dp.h"
#include "tofu/partition/recursive.h"

namespace tofu {
namespace {

TEST(Factorize, NonIncreasingFactors) {
  EXPECT_EQ(FactorizeWorkers(8), (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(FactorizeWorkers(6), (std::vector<int>{3, 2}));
  EXPECT_EQ(FactorizeWorkers(12), (std::vector<int>{3, 2, 2}));
  EXPECT_EQ(FactorizeWorkers(7), (std::vector<int>{7}));
  EXPECT_EQ(FactorizeWorkers(1), (std::vector<int>{}));
}

ModelGraph MidMlp() {
  MlpConfig config;
  config.layer_sizes = {512, 512, 512, 256};
  config.batch = 64;
  return BuildMlp(config);
}

TEST(Recursive, TrivialPlanForOneWorker) {
  ModelGraph model = MidMlp();
  PartitionPlan plan = RecursivePartition(model.graph, 1);
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_DOUBLE_EQ(plan.total_comm_bytes, 0.0);
}

TEST(Recursive, EveryLargeTensorShardsToOneKth) {
  ModelGraph model = MidMlp();
  const Graph& g = model.graph;
  const int k = 8;
  PartitionPlan plan = RecursivePartition(g, k);
  ASSERT_EQ(plan.steps.size(), 3u);
  for (const TensorNode& t : g.tensors()) {
    if (t.bytes() <= kReplicateThresholdBytes) {
      continue;  // small tensors may replicate
    }
    const std::int64_t shard = plan.ShardBytes(g, t.id);
    // Ceil division allows slight overshoot; shards must be ~1/k.
    EXPECT_LE(shard, t.bytes() / k + t.bytes() / 16) << t.name;
  }
}

TEST(Recursive, WeightedStepCostsSumToTotal) {
  ModelGraph model = MidMlp();
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  double sum = 0.0;
  for (double c : plan.weighted_step_costs) {
    sum += c;
  }
  EXPECT_NEAR(sum, plan.total_comm_bytes, 1.0);
}

// Theorem 2: delta_i <= delta_{i+1} for the weighted per-step costs. Holds when extents
// stay divisible (the appendix's setting); we use power-of-two dims throughout.
TEST(Recursive, Theorem2StepCostMonotonicity) {
  MlpConfig config;
  config.layer_sizes = {1024, 1024, 1024, 1024};
  config.batch = 256;
  config.with_bias = false;
  ModelGraph model = BuildMlp(config);
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  ASSERT_EQ(plan.weighted_step_costs.size(), 3u);
  for (size_t i = 0; i + 1 < plan.weighted_step_costs.size(); ++i) {
    EXPECT_LE(plan.weighted_step_costs[i], plan.weighted_step_costs[i + 1] * 1.0001)
        << "step " << i;
  }
}

TEST(Recursive, NonPowerOfTwoWorkers) {
  ModelGraph model = MidMlp();
  PartitionPlan plan = RecursivePartition(model.graph, 6);
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].ways, 3);
  EXPECT_EQ(plan.steps[1].ways, 2);
  for (const TensorNode& t : model.graph.tensors()) {
    if (t.bytes() > kReplicateThresholdBytes) {
      std::vector<int> splits = plan.TensorSplits(model.graph, t.id);
      int total = 1;
      for (int s : splits) {
        total *= s;
      }
      EXPECT_EQ(total, 6) << t.name;
    }
  }
}

TEST(Recursive, MultiDimensionTilingsEmerge) {
  // With 8 workers and 2-D tensors, at least one tensor should end up tiled on both
  // dimensions (the Figure 6 scenario) in a mixed MLP.
  MlpConfig config;
  config.layer_sizes = {2048, 2048, 2048};
  config.batch = 4;  // the batch admits at most two 2-way splits: the third must tile
  config.with_bias = false;  // another dimension
  ModelGraph model = BuildMlp(config);
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  bool saw_multi_dim = false;
  for (const TensorNode& t : model.graph.tensors()) {
    std::vector<int> splits = plan.TensorSplits(model.graph, t.id);
    int dims_split = 0;
    for (int s : splits) {
      dims_split += s > 1 ? 1 : 0;
    }
    saw_multi_dim = saw_multi_dim || dims_split >= 2;
  }
  EXPECT_TRUE(saw_multi_dim);
}

TEST(FlatDp, CompletesAndAgreesOnTinyGraph) {
  MlpConfig config;
  config.layer_sizes = {128, 96};
  config.batch = 32;
  config.with_bias = false;
  ModelGraph model = BuildMlp(config);
  CoarseGraph cg = Coarsen(model.graph);

  FlatDpOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 30.0;
  FlatDpResult flat = RunFlatDp(model.graph, cg, options);
  ASSERT_TRUE(flat.completed);

  PartitionPlan recursive = RecursivePartition(model.graph, 4);
  // Both search the same cost landscape; the flat (joint) search can be no better than
  // the per-step-optimal recursion under Theorem 3, and should land close.
  EXPECT_NEAR(flat.plan.total_comm_bytes, recursive.total_comm_bytes,
              0.15 * std::max(1.0, recursive.total_comm_bytes));
}

TEST(FlatDp, BudgetedRunReportsProjection) {
  RnnConfig config;
  config.layers = 2;
  config.hidden = 256;
  config.batch = 32;
  config.timesteps = 8;
  ModelGraph model = BuildRnn(config);
  CoarseGraph cg = Coarsen(model.graph);
  FlatDpOptions options;
  options.num_workers = 8;
  options.time_budget_seconds = 0.2;
  FlatDpResult flat = RunFlatDp(model.graph, cg, options);
  EXPECT_GT(flat.configs_total, 0.0);
  if (!flat.completed) {
    EXPECT_GT(flat.projected_seconds, 0.0);
    EXPECT_GT(flat.configs_total, flat.configs_evaluated);
  }
}

TEST(Recursive, BudgetedPlanRecordsPerStepPeaksAndHonorsTheFinalBound) {
  ModelGraph model = MidMlp();
  PartitionPlan free_plan = RecursivePartition(model.graph, 8);
  ASSERT_EQ(free_plan.steps.size(), 3u);
  // Per-step peaks are recorded even without a budget, and shrink monotonically: every
  // step cuts (or at worst replicates) against strictly finer groups.
  for (size_t i = 0; i + 1 < free_plan.steps.size(); ++i) {
    EXPECT_GE(free_plan.steps[i].peak_shard_bytes,
              free_plan.steps[i + 1].peak_shard_bytes);
  }
  EXPECT_TRUE(free_plan.memory_feasible);
  EXPECT_EQ(free_plan.memory_budget_bytes, 0);

  // Constrain below the unconstrained plan's final residency: the search must return a
  // DIFFERENT plan whose final per-worker bytes fit, at equal-or-higher comm.
  const double free_final = free_plan.steps.back().peak_shard_bytes;
  PartitionOptions options;
  options.memory_budget_bytes = static_cast<std::int64_t>(free_final) - 1;
  PartitionPlan tight = RecursivePartition(model.graph, 8, options);
  ASSERT_EQ(tight.steps.size(), 3u);
  EXPECT_TRUE(tight.memory_feasible);
  EXPECT_EQ(tight.memory_budget_bytes, options.memory_budget_bytes);
  EXPECT_LE(tight.steps.back().peak_shard_bytes,
            static_cast<double>(options.memory_budget_bytes));
  EXPECT_GE(tight.total_comm_bytes, free_plan.total_comm_bytes);
  // The budget changed the outcome, not just the bookkeeping.
  EXPECT_LT(tight.steps.back().peak_shard_bytes, free_final);

  // An impossible budget comes back marked infeasible, with the lightest plan found as
  // the witness (still a complete, well-formed plan).
  options.memory_budget_bytes = 1;
  PartitionPlan witness = RecursivePartition(model.graph, 8, options);
  EXPECT_FALSE(witness.memory_feasible);
  ASSERT_EQ(witness.steps.size(), 3u);
  EXPECT_GT(witness.steps.back().peak_shard_bytes, 1.0);
}

TEST(FlatDp, BudgetPrunesOrProvesInfeasibility) {
  MlpConfig config;
  config.layer_sizes = {128, 96};
  config.batch = 32;
  config.with_bias = false;
  ModelGraph model = BuildMlp(config);
  CoarseGraph cg = Coarsen(model.graph);

  FlatDpOptions options;
  options.num_workers = 4;
  options.time_budget_seconds = 30.0;
  FlatDpResult free_run = RunFlatDp(model.graph, cg, options);
  ASSERT_TRUE(free_run.completed);
  ASSERT_TRUE(free_run.feasible);
  const double free_final = free_run.plan.steps.back().peak_shard_bytes;

  // A budget under the unconstrained tiling's residency still completes feasibly (the
  // flat options are whole tilings, so the bound applies directly)...
  options.memory_budget_bytes = static_cast<std::int64_t>(free_final) - 1;
  FlatDpResult tight = RunFlatDp(model.graph, cg, options);
  ASSERT_TRUE(tight.completed);
  ASSERT_TRUE(tight.feasible);
  EXPECT_LE(tight.plan.steps.back().peak_shard_bytes,
            static_cast<double>(options.memory_budget_bytes));
  EXPECT_GE(tight.plan.total_comm_bytes, free_run.plan.total_comm_bytes);

  // ...and an impossible one is proved infeasible without enumerating anything.
  options.memory_budget_bytes = 1;
  FlatDpResult impossible = RunFlatDp(model.graph, cg, options);
  EXPECT_FALSE(impossible.feasible);
  EXPECT_GT(impossible.min_possible_bytes, 1.0);
  EXPECT_EQ(impossible.search_stats.states_explored, 0);
}

TEST(Recursive, RnnPlanPartitionsEveryWeight) {
  RnnConfig config;
  config.layers = 2;
  config.hidden = 512;
  config.batch = 64;
  config.timesteps = 6;
  ModelGraph model = BuildRnn(config);
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  for (TensorId w : model.graph.ParamIds()) {
    if (model.graph.tensor(w).bytes() > kReplicateThresholdBytes) {
      EXPECT_NE(plan.DescribeTiling(model.graph, w), "replicated")
          << model.graph.tensor(w).name;
    }
  }
}

}  // namespace
}  // namespace tofu
