// Communication cost-model tests (Lemma 1 conventions, see strategy.h): aligned inputs
// are free, mismatched cuts pay S*(f-1)/f, replication pays S*(f-1), reductions pay
// S*(f-1), halos pay per-boundary slabs -- all verified against hand computations.
#include <gtest/gtest.h>

#include "tofu/partition/strategy.h"

namespace tofu {
namespace {

// A single matmul: x [64,128] * w [128,256] -> y [64,256].
struct MatmulFixture {
  Graph g;
  TensorId x, w, y;
  OpId op;

  MatmulFixture() {
    x = g.AddInput("x", {64, 128});
    w = g.AddParam("w", {128, 256});
    y = g.AddOp("matmul", {}, {x, w});
    op = g.tensor(y).producer;
  }
};

int StrategyIndexByVar(StepContext* ctx, OpId op, const std::string& var,
                       const Graph& graph) {
  const OpSemantics& sem = graph.SemanticsOf(graph.op(op));
  for (size_t i = 0; i < sem.strategies.size(); ++i) {
    if (sem.strategies[i].var_name == var) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

TEST(StrategyCost, AlignedRowSplitIsFree) {
  MatmulFixture f;
  StepContext ctx(f.g, StepContext::InitialShapes(f.g), 2);
  const int m = StrategyIndexByVar(&ctx, f.op, "m", f.g);
  ASSERT_GE(m, 0);
  // x row-split, w replicated (small enough? w is 128*256*4 = 128 KiB > threshold ->
  // must use a real cut; keep it split on its own dim with the replication charge).
  std::vector<int> cuts(static_cast<size_t>(f.g.num_tensors()), kReplicated);
  cuts[static_cast<size_t>(f.x)] = 0;   // rows
  cuts[static_cast<size_t>(f.y)] = 0;   // rows
  cuts[static_cast<size_t>(f.w)] = kReplicated;
  EXPECT_DOUBLE_EQ(ctx.OpCommBytes(f.op, m, cuts), 0.0);
}

TEST(StrategyCost, ReplicationChargesFullGather) {
  MatmulFixture f;
  StepContext ctx(f.g, StepContext::InitialShapes(f.g), 2);
  const int m = StrategyIndexByVar(&ctx, f.op, "m", f.g);
  std::vector<int> cuts(static_cast<size_t>(f.g.num_tensors()), kReplicated);
  cuts[static_cast<size_t>(f.x)] = 0;
  cuts[static_cast<size_t>(f.y)] = 0;
  cuts[static_cast<size_t>(f.w)] = 1;  // w stored column-split but needed whole
  const double w_bytes = static_cast<double>(f.g.tensor(f.w).bytes());
  EXPECT_DOUBLE_EQ(ctx.OpCommBytes(f.op, m, cuts), w_bytes * 1.0);  // S*(f-1), f=2
}

TEST(StrategyCost, MismatchedSplitChargesHalfAtTwoWorkers) {
  MatmulFixture f;
  StepContext ctx(f.g, StepContext::InitialShapes(f.g), 2);
  const int m = StrategyIndexByVar(&ctx, f.op, "m", f.g);
  std::vector<int> cuts(static_cast<size_t>(f.g.num_tensors()), kReplicated);
  cuts[static_cast<size_t>(f.x)] = 1;  // stored column-split, required row-split
  cuts[static_cast<size_t>(f.y)] = 0;
  cuts[static_cast<size_t>(f.w)] = kReplicated;
  const double x_bytes = static_cast<double>(f.g.tensor(f.x).bytes());
  EXPECT_DOUBLE_EQ(ctx.OpCommBytes(f.op, m, cuts), x_bytes / 2.0);  // S*(f-1)/f
}

TEST(StrategyCost, ReductionChargesOutputScatter) {
  MatmulFixture f;
  StepContext ctx(f.g, StepContext::InitialShapes(f.g), 2);
  const int k = StrategyIndexByVar(&ctx, f.op, "k", f.g);
  ASSERT_GE(k, 0);
  std::vector<int> cuts(static_cast<size_t>(f.g.num_tensors()), kReplicated);
  cuts[static_cast<size_t>(f.x)] = 1;  // k-split: x cols, w rows -- both aligned
  cuts[static_cast<size_t>(f.w)] = 0;
  cuts[static_cast<size_t>(f.y)] = 0;
  const double y_bytes = static_cast<double>(f.g.tensor(f.y).bytes());
  EXPECT_DOUBLE_EQ(ctx.OpCommBytes(f.op, k, cuts), y_bytes * 1.0);  // reduce-scatter
}

TEST(StrategyCost, OutputShuffleBetweenCuts) {
  MatmulFixture f;
  StepContext ctx(f.g, StepContext::InitialShapes(f.g), 2);
  const int m = StrategyIndexByVar(&ctx, f.op, "m", f.g);
  std::vector<int> cuts(static_cast<size_t>(f.g.num_tensors()), kReplicated);
  cuts[static_cast<size_t>(f.x)] = 0;
  cuts[static_cast<size_t>(f.w)] = kReplicated;
  cuts[static_cast<size_t>(f.y)] = 1;  // produced row-split, stored column-split
  const double y_bytes = static_cast<double>(f.g.tensor(f.y).bytes());
  EXPECT_DOUBLE_EQ(ctx.OpCommBytes(f.op, m, cuts), y_bytes / 2.0);
}

TEST(StrategyCost, CostScalesWithWays) {
  MatmulFixture f;
  StepContext ctx2(f.g, StepContext::InitialShapes(f.g), 2);
  StepContext ctx4(f.g, StepContext::InitialShapes(f.g), 4);
  const int m = StrategyIndexByVar(&ctx2, f.op, "m", f.g);
  std::vector<int> cuts(static_cast<size_t>(f.g.num_tensors()), kReplicated);
  cuts[static_cast<size_t>(f.x)] = 0;
  cuts[static_cast<size_t>(f.y)] = 0;
  cuts[static_cast<size_t>(f.w)] = 1;
  const double w_bytes = static_cast<double>(f.g.tensor(f.w).bytes());
  EXPECT_DOUBLE_EQ(ctx2.OpCommBytes(f.op, m, cuts), w_bytes * 1.0);  // f=2: S
  EXPECT_DOUBLE_EQ(ctx4.OpCommBytes(f.op, m, cuts), w_bytes * 3.0);  // f=4: 3S
}

TEST(StrategyCost, HaloChargesBoundarySlabs) {
  Graph g;
  TensorId x = g.AddInput("x", {8, 16, 64, 64});
  TensorId w = g.AddParam("w", {16, 16, 3, 3});
  TensorId y = g.AddOp("conv2d", OpAttrs().Set("stride", 1).Set("pad", 1), {x, w});
  OpId op = g.tensor(y).producer;

  StepContext ctx(g, StepContext::InitialShapes(g), 2);
  const int ho = StrategyIndexByVar(&ctx, op, "ho", g);
  ASSERT_GE(ho, 0);
  std::vector<int> cuts(static_cast<size_t>(g.num_tensors()), kReplicated);
  cuts[static_cast<size_t>(x)] = 2;  // H-split: aligned with the halo requirement
  cuts[static_cast<size_t>(y)] = 2;
  cuts[static_cast<size_t>(w)] = kReplicated;  // filters are tiny
  const double cost = ctx.OpCommBytes(op, ho, cuts);
  // Halo of ~1-2 rows on each side of one internal boundary: 2*(f-1)*halo*row_bytes.
  const double row_bytes = static_cast<double>(g.tensor(x).bytes()) / 64.0;
  EXPECT_GT(cost, 0.0);
  EXPECT_LE(cost, 2.0 * 3.0 * row_bytes);
}

TEST(StrategyCost, ReplicatedExecChargesInputGathers) {
  MatmulFixture f;
  StepContext ctx(f.g, StepContext::InitialShapes(f.g), 2);
  std::vector<int> cuts(static_cast<size_t>(f.g.num_tensors()), kReplicated);
  cuts[static_cast<size_t>(f.x)] = 0;
  cuts[static_cast<size_t>(f.w)] = 0;
  cuts[static_cast<size_t>(f.y)] = 0;
  const double expect = static_cast<double>(f.g.tensor(f.x).bytes()) +
                        static_cast<double>(f.g.tensor(f.w).bytes());
  EXPECT_DOUBLE_EQ(ctx.OpCommBytes(f.op, kReplicatedExec, cuts), expect);
}

TEST(StrategyCost, ApplicabilityChecksExtents) {
  Graph g;
  TensorId x = g.AddInput("x", {2, 128});
  TensorId w = g.AddParam("w", {128, 256});
  TensorId y = g.AddOp("matmul", {}, {x, w});
  OpId op = g.tensor(y).producer;
  StepContext ctx(g, StepContext::InitialShapes(g), 4);
  const int m = StrategyIndexByVar(&ctx, op, "m", g);
  const int n = StrategyIndexByVar(&ctx, op, "n", g);
  EXPECT_FALSE(ctx.Applicable(op, m));  // batch 2 cannot split 4 ways
  EXPECT_TRUE(ctx.Applicable(op, n));
}

TEST(StrategyCost, ApplyBasicPlanShrinksShapes) {
  MatmulFixture f;
  BasicPlan plan;
  plan.ways = 2;
  plan.tensor_cut.assign(static_cast<size_t>(f.g.num_tensors()), kReplicated);
  plan.tensor_cut[static_cast<size_t>(f.x)] = 0;
  plan.tensor_cut[static_cast<size_t>(f.w)] = 1;
  std::vector<Shape> shapes =
      StepContext::ApplyBasicPlan(f.g, StepContext::InitialShapes(f.g), plan);
  EXPECT_EQ(shapes[static_cast<size_t>(f.x)], (Shape{32, 128}));
  EXPECT_EQ(shapes[static_cast<size_t>(f.w)], (Shape{128, 128}));
  EXPECT_EQ(shapes[static_cast<size_t>(f.y)], (Shape{64, 256}));  // replicated: unchanged
}

TEST(StrategyCost, CutOptionsRespectThreshold) {
  Graph g;
  TensorId big = g.AddInput("big", {1024, 1024});   // 4 MiB: must partition
  TensorId small = g.AddInput("small", {64});       // 256 B: may replicate
  StepContext ctx(g, StepContext::InitialShapes(g), 2);
  std::vector<int> big_options = ctx.CutOptions(big);
  EXPECT_EQ(big_options, (std::vector<int>{0, 1}));
  std::vector<int> small_options = ctx.CutOptions(small);
  EXPECT_EQ(small_options, (std::vector<int>{0, kReplicated}));
}

}  // namespace
}  // namespace tofu
