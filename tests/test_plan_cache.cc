// Sharded LRU plan-cache tests: per-shard eviction order, the capacity-1 clamp that
// keeps tiny caches exact, overwrite/erase/clear semantics, the eviction counter, a
// seeded-random property test against a reference single-list LRU model, and the
// Session-level collision fall-through (a cached plan that fails validation against
// the request's graph is recounted and replaced, never served).
#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "tofu/core/session.h"
#include "tofu/models/mlp.h"
#include "tofu/util/sharded_lru.h"

namespace tofu {
namespace {

TEST(ShardedLruCache, LookupMissesOnEmptyAndAfterErase) {
  ShardedLruCache<int> cache(/*capacity=*/4, /*num_shards=*/2);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  cache.Insert("a", 1);
  ASSERT_TRUE(cache.Lookup("a").has_value());
  EXPECT_EQ(*cache.Lookup("a"), 1);
  cache.Erase("a");
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedLruCache, EvictsLeastRecentlyUsedWithinAShard) {
  // One shard makes the global order the shard order.
  ShardedLruCache<int> cache(/*capacity=*/3, /*num_shards=*/1);
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  cache.Insert("c", 3);
  // Touch "a": "b" becomes the eviction victim.
  ASSERT_TRUE(cache.Lookup("a").has_value());
  cache.Insert("d", 4);
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_TRUE(cache.Lookup("d").has_value());
  EXPECT_EQ(cache.evictions(), 1);
}

TEST(ShardedLruCache, OldestFirstOrderIsObservable) {
  ShardedLruCache<int> cache(/*capacity=*/4, /*num_shards=*/1);
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  cache.Insert("c", 3);
  ASSERT_TRUE(cache.Lookup("b").has_value());  // promote
  const std::vector<std::string> keys = cache.ShardKeysOldestFirst(0);
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "c");
  EXPECT_EQ(keys[2], "b");
}

TEST(ShardedLruCache, OverwriteReplacesValueAndRefreshesRecency) {
  ShardedLruCache<int> cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  cache.Insert("a", 10);  // overwrite: newest now, size unchanged
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.Lookup("a"), 10);
  cache.Insert("c", 3);  // evicts "b", the true LRU
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("a").has_value());
}

TEST(ShardedLruCache, CapacityOneClampsShardsAndStaysExact) {
  // Eight requested shards with capacity 1 must behave as one exact single-entry
  // cache, not eight one-entry shards (which would hold up to 8 values).
  ShardedLruCache<int> cache(/*capacity=*/1, /*num_shards=*/8);
  EXPECT_EQ(cache.num_shards(), 1u);
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("b").has_value());
}

TEST(ShardedLruCache, ZeroCapacityCachesNothing) {
  ShardedLruCache<int> cache(/*capacity=*/0, /*num_shards=*/4);
  cache.Insert("a", 1);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedLruCache, ClearEmptiesEveryShard) {
  ShardedLruCache<int> cache(/*capacity=*/64, /*num_shards=*/8);
  for (int i = 0; i < 32; ++i) cache.Insert("key" + std::to_string(i), i);
  EXPECT_EQ(cache.size(), 32u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(cache.Lookup("key" + std::to_string(i)).has_value());
  }
}

TEST(ShardedLruCache, KeysSpreadAcrossShards) {
  ShardedLruCache<int> cache(/*capacity=*/256, /*num_shards=*/8);
  ASSERT_EQ(cache.num_shards(), 8u);
  std::vector<int> per_shard(8, 0);
  for (int i = 0; i < 64; ++i) {
    per_shard[cache.ShardIndex("key" + std::to_string(i))] += 1;
  }
  int populated = 0;
  for (int count : per_shard) populated += count > 0 ? 1 : 0;
  // A mixed hash would have to be catastrophically bad to land 64 keys on one shard.
  EXPECT_GE(populated, 2);
}

// Reference model: a single std::list-based LRU with the same capacity. With one
// shard the cache must match it operation for operation.
class ReferenceLru {
 public:
  explicit ReferenceLru(size_t capacity) : capacity_(capacity) {}

  void Insert(const std::string& key, int value) {
    if (capacity_ == 0) return;
    auto it = FindEntry(key);
    if (it != entries_.end()) entries_.erase(it);
    while (entries_.size() >= capacity_) entries_.pop_front();
    entries_.emplace_back(key, value);
  }

  bool Lookup(const std::string& key, int* value) {
    auto it = FindEntry(key);
    if (it == entries_.end()) return false;
    *value = it->second;
    entries_.splice(entries_.end(), entries_, it);  // promote to newest
    return true;
  }

  void Erase(const std::string& key) {
    auto it = FindEntry(key);
    if (it != entries_.end()) entries_.erase(it);
  }

  size_t size() const { return entries_.size(); }

 private:
  std::list<std::pair<std::string, int>>::iterator FindEntry(const std::string& key) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == key) return it;
    }
    return entries_.end();
  }

  size_t capacity_;
  std::list<std::pair<std::string, int>> entries_;  // oldest first
};

TEST(ShardedLruCache, SeededRandomOpsMatchReferenceModel) {
  ShardedLruCache<int> cache(/*capacity=*/8, /*num_shards=*/1);
  ReferenceLru reference(8);
  std::uint64_t state = 0x5eed5eed5eedull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int step = 0; step < 20000; ++step) {
    const std::string key = "k" + std::to_string(next() % 24);  // 24 keys over cap 8
    switch (next() % 4) {
      case 0:
      case 1: {  // insert (twice as likely, keeps the cache churning)
        const int value = static_cast<int>(next() % 1000);
        cache.Insert(key, value);
        reference.Insert(key, value);
        break;
      }
      case 2: {  // lookup: presence AND value must agree
        int expected = 0;
        const bool reference_hit = reference.Lookup(key, &expected);
        std::optional<int> actual = cache.Lookup(key);
        ASSERT_EQ(actual.has_value(), reference_hit) << "step " << step << " " << key;
        if (reference_hit) ASSERT_EQ(*actual, expected) << "step " << step;
        break;
      }
      case 3:
        cache.Erase(key);
        reference.Erase(key);
        break;
    }
    ASSERT_EQ(cache.size(), reference.size()) << "step " << step;
  }
}

// ---------------------------------------------------------------- Session level

ModelGraph CacheMlp() {
  MlpConfig config;
  config.layer_sizes = {128, 64, 10};
  config.batch = 16;
  return BuildMlp(config);
}

TEST(SessionPlanCache, CollisionFallsThroughToFreshSearchAndHeals) {
  ModelGraph model = CacheMlp();
  // Structurally different (one weight layer fewer), so its plan cannot validate.
  ModelGraph other = BuildMlp(MlpConfig{8, {32, 16}, true});
  Session session(DeviceTopology::Uniform(4));

  PartitionRequest request;
  request.graph = &model.graph;

  // Plant a plan for a DIFFERENT graph under this request's key, as a forged 64-bit
  // signature collision would.
  Session scratch(DeviceTopology::Uniform(4));
  PartitionRequest other_request;
  other_request.graph = &other.graph;
  Result<PartitionResponse> other_plan = scratch.Partition(other_request);
  ASSERT_TRUE(other_plan.ok()) << other_plan.status().ToString();
  session.InsertPlanForTesting(request, *other_plan);

  Result<PartitionResponse> response = session.Partition(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->from_cache);  // the colliding entry must not be served
  EXPECT_EQ(session.cache_stats().collisions, 1);
  EXPECT_EQ(session.cache_stats().misses, 1);
  EXPECT_EQ(response->plan.steps.size(), 2u);  // 4 workers -> 2 halving steps

  // The bad entry was replaced: the same request now hits and serves the good plan.
  Result<PartitionResponse> again = session.Partition(request);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->from_cache);
  EXPECT_EQ(session.cache_stats().hits, 1);
  EXPECT_EQ(session.cache_stats().collisions, 1);
}

TEST(SessionPlanCache, EvictionsSurfaceInStats) {
  ModelGraph a = BuildMlp(MlpConfig{16, {64, 32, 10}, true});
  ModelGraph b = BuildMlp(MlpConfig{16, {96, 48, 10}, true});
  ModelGraph c = BuildMlp(MlpConfig{16, {128, 64, 10}, true});
  Session session(DeviceTopology::Uniform(4), /*max_cached_plans=*/2,
                  /*cache_shards=*/1);
  for (ModelGraph* model : {&a, &b, &c, &a}) {
    PartitionRequest request;
    request.graph = &model->graph;
    ASSERT_TRUE(session.Partition(request).ok());
  }
  PlanCacheStats stats = session.cache_stats();
  // a, b cached; c evicts a; the second a request misses again.
  EXPECT_EQ(stats.misses, 4);
  EXPECT_EQ(stats.hits, 0);
  EXPECT_GE(stats.evictions, 2);
}

}  // namespace
}  // namespace tofu
