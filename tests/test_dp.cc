// DP search tests: optimality against exhaustive enumeration on small graphs,
// determinism, plan well-formedness, and the reduction-strategy toggle.
#include <gtest/gtest.h>

#include <limits>

#include "tofu/models/mlp.h"
#include "tofu/partition/coarsen.h"
#include "tofu/partition/dp.h"

namespace tofu {
namespace {

// Exhaustive minimum over every slot-cut assignment; per-op strategies are chosen by
// argmin given the cuts (valid because op strategies are independent given cuts).
double BruteForceMin(const Graph& g, const CoarseGraph& cg, int ways,
                     bool allow_reduction = true) {
  StepContext ctx(g, StepContext::InitialShapes(g), ways);
  std::vector<std::vector<int>> options(static_cast<size_t>(cg.num_slots()));
  for (int s = 0; s < cg.num_slots(); ++s) {
    options[static_cast<size_t>(s)] = ctx.CutOptions(cg.slots[static_cast<size_t>(s)].members[0]);
  }
  std::vector<size_t> odo(static_cast<size_t>(cg.num_slots()), 0);
  std::vector<int> cuts(static_cast<size_t>(g.num_tensors()), kReplicated);
  double best = std::numeric_limits<double>::infinity();
  bool done = false;
  while (!done) {
    for (int s = 0; s < cg.num_slots(); ++s) {
      const int cut = options[static_cast<size_t>(s)][odo[static_cast<size_t>(s)]];
      for (TensorId t : cg.slots[static_cast<size_t>(s)].members) {
        cuts[static_cast<size_t>(t)] = cut;
      }
    }
    double total = 0.0;
    for (OpId op = 0; op < g.num_ops(); ++op) {
      double op_best = ctx.OpCommBytes(op, kReplicatedExec, cuts);
      const int n = static_cast<int>(ctx.Strategies(op).size());
      for (int sidx = 0; sidx < n; ++sidx) {
        if (!allow_reduction && ctx.Strategies(op)[static_cast<size_t>(sidx)].is_reduction) {
          continue;
        }
        if (ctx.Applicable(op, sidx)) {
          op_best = std::min(op_best, ctx.OpCommBytes(op, sidx, cuts));
        }
      }
      total += op_best;
    }
    best = std::min(best, total);
    size_t pos = 0;
    while (pos < odo.size()) {
      if (++odo[pos] < options[pos].size()) {
        break;
      }
      odo[pos] = 0;
      ++pos;
    }
    done = pos == odo.size();
  }
  return best;
}

ModelGraph TinyMlp() {
  MlpConfig config;
  config.layer_sizes = {64, 48, 10};
  config.batch = 16;
  config.with_bias = false;
  return BuildMlp(config);
}

TEST(Dp, MatchesBruteForceOnTinyMlp) {
  ModelGraph model = TinyMlp();
  CoarseGraph cg = Coarsen(model.graph);
  ASSERT_LE(cg.num_slots(), 16) << "fixture grew too large for exhaustive search";

  StepContext ctx(model.graph, StepContext::InitialShapes(model.graph), 2);
  DpResult dp = RunStepDp(&ctx, cg, {});
  const double brute = BruteForceMin(model.graph, cg, 2);
  EXPECT_NEAR(dp.plan.comm_bytes, brute, 1.0);
  EXPECT_LE(dp.plan.comm_bytes, brute + 1.0);  // never worse than exhaustive
}

TEST(Dp, MatchesBruteForceWithoutReductions) {
  ModelGraph model = TinyMlp();
  CoarseGraph cg = Coarsen(model.graph);
  StepContext ctx(model.graph, StepContext::InitialShapes(model.graph), 2);
  DpOptions options;
  options.allow_reduction_strategies = false;
  DpResult dp = RunStepDp(&ctx, cg, options);
  const double brute = BruteForceMin(model.graph, cg, 2, /*allow_reduction=*/false);
  EXPECT_NEAR(dp.plan.comm_bytes, brute, 1.0);
}

TEST(Dp, MatchesBruteForceAtFourWays) {
  ModelGraph model = TinyMlp();
  CoarseGraph cg = Coarsen(model.graph);
  StepContext ctx(model.graph, StepContext::InitialShapes(model.graph), 4);
  DpResult dp = RunStepDp(&ctx, cg, {});
  const double brute = BruteForceMin(model.graph, cg, 4);
  EXPECT_NEAR(dp.plan.comm_bytes, brute, 1.0);
}

TEST(Dp, PlanIsWellFormed) {
  ModelGraph model = TinyMlp();
  const Graph& g = model.graph;
  CoarseGraph cg = Coarsen(g);
  StepContext ctx(g, StepContext::InitialShapes(g), 2);
  DpResult dp = RunStepDp(&ctx, cg, {});
  const BasicPlan& plan = dp.plan;
  ASSERT_EQ(plan.tensor_cut.size(), static_cast<size_t>(g.num_tensors()));
  ASSERT_EQ(plan.op_strategy.size(), static_cast<size_t>(g.num_ops()));

  for (TensorId t = 0; t < g.num_tensors(); ++t) {
    const int cut = plan.tensor_cut[static_cast<size_t>(t)];
    if (cut != kReplicated) {
      ASSERT_LT(cut, g.tensor(t).rank());
      EXPECT_GE(g.tensor(t).shape[static_cast<size_t>(cut)], 2);
    }
    // Slot consistency: all members share the slot's cut.
    const int slot = cg.tensor_slot[static_cast<size_t>(t)];
    EXPECT_EQ(cut,
              plan.tensor_cut[static_cast<size_t>(cg.slots[static_cast<size_t>(slot)].members[0])]);
  }
  for (OpId op = 0; op < g.num_ops(); ++op) {
    const int sidx = plan.op_strategy[static_cast<size_t>(op)];
    if (sidx != kReplicatedExec) {
      EXPECT_LT(sidx, static_cast<int>(ctx.Strategies(op).size()));
      EXPECT_TRUE(ctx.Applicable(op, sidx));
    }
  }
}

TEST(Dp, DeterministicAcrossRuns) {
  ModelGraph model = TinyMlp();
  CoarseGraph cg = Coarsen(model.graph);
  StepContext ctx1(model.graph, StepContext::InitialShapes(model.graph), 2);
  StepContext ctx2(model.graph, StepContext::InitialShapes(model.graph), 2);
  DpResult a = RunStepDp(&ctx1, cg, {});
  DpResult b = RunStepDp(&ctx2, cg, {});
  EXPECT_EQ(a.plan.tensor_cut, b.plan.tensor_cut);
  EXPECT_EQ(a.plan.op_strategy, b.plan.op_strategy);
  EXPECT_DOUBLE_EQ(a.plan.comm_bytes, b.plan.comm_bytes);
}

TEST(Dp, ReductionStrategiesNeverHurt) {
  ModelGraph model = TinyMlp();
  CoarseGraph cg = Coarsen(model.graph);
  StepContext ctx1(model.graph, StepContext::InitialShapes(model.graph), 2);
  DpResult with = RunStepDp(&ctx1, cg, {});
  StepContext ctx2(model.graph, StepContext::InitialShapes(model.graph), 2);
  DpOptions no_reduction;
  no_reduction.allow_reduction_strategies = false;
  DpResult without = RunStepDp(&ctx2, cg, no_reduction);
  EXPECT_LE(with.plan.comm_bytes, without.plan.comm_bytes + 1.0);
}

TEST(Dp, ElementwiseRidersAreFree) {
  // A pure element-wise chain has a zero-communication plan at any split.
  Graph g;
  TensorId x = g.AddInput("x", {64, 64});
  TensorId a = g.AddOp("relu", {}, {x});
  TensorId b = g.AddOp("tanh", {}, {a});
  g.AddOp("sigmoid", {}, {b});
  CoarseGraph cg = Coarsen(g);
  StepContext ctx(g, StepContext::InitialShapes(g), 2);
  DpResult dp = RunStepDp(&ctx, cg, {});
  EXPECT_DOUBLE_EQ(dp.plan.comm_bytes, 0.0);
}

}  // namespace
}  // namespace tofu
