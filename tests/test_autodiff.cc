// Backward-pass generation tests: gradient structure for MLP and RNN graphs, shape
// agreement, multi-use gradient aggregation, and optimizer update wiring (the §5.1
// grouping inputs the coarsening pass relies on).
#include <gtest/gtest.h>

#include "tofu/graph/autodiff.h"
#include "tofu/models/mlp.h"
#include "tofu/models/rnn.h"

namespace tofu {
namespace {

TEST(Autodiff, MlpGradientsExistForEveryParam) {
  Graph g;
  TensorId x = g.AddInput("x", {8, 16});
  TensorId w1 = g.AddParam("w1", {16, 32});
  TensorId h = g.AddOp("matmul", {}, {x, w1});
  TensorId a = g.AddOp("relu", {}, {h});
  TensorId w2 = g.AddParam("w2", {32, 4});
  TensorId logits = g.AddOp("matmul", {}, {a, w2});
  TensorId labels = g.AddInput("labels", {8});
  TensorId xent = g.AddOp("softmax_xent", {}, {logits, labels});
  TensorId loss = g.AddOp("reduce_mean_all", {}, {xent});

  AutodiffResult grads = BuildBackward(&g, loss);
  ValidateGraph(g);

  for (TensorId w : {w1, w2}) {
    auto it = grads.grad_map.find(w);
    ASSERT_NE(it, grads.grad_map.end());
    EXPECT_EQ(g.tensor(it->second).shape, g.tensor(w).shape);
    EXPECT_EQ(g.tensor(it->second).grad_of, w);
  }
  // Data and labels carry no gradient.
  EXPECT_EQ(grads.grad_map.count(x), 0u);
  EXPECT_EQ(grads.grad_map.count(labels), 0u);
  // Backward ops reference their forward op.
  int backward_ops = 0;
  for (const OpNode& op : g.ops()) {
    if (op.is_backward) {
      ++backward_ops;
      EXPECT_NE(op.forward_op, kNoOp);
    }
  }
  EXPECT_GT(backward_ops, 3);
}

TEST(Autodiff, SharedWeightGradsAreAggregatedInPlace) {
  // One weight used by two matmuls: the chain rule must sum two contributions.
  Graph g;
  TensorId x1 = g.AddInput("x1", {8, 16});
  TensorId x2 = g.AddInput("x2", {8, 16});
  TensorId w = g.AddParam("w", {16, 16});
  TensorId y1 = g.AddOp("matmul", {}, {x1, w});
  TensorId y2 = g.AddOp("matmul", {}, {x2, w});
  TensorId sum = g.AddOp("add", {}, {y1, y2});
  TensorId flat = g.AddOp("reduce_rows", {}, {sum});
  TensorId loss = g.AddOp("reduce_mean_all", {}, {flat});

  AutodiffResult grads = BuildBackward(&g, loss);
  ValidateGraph(g);

  auto it = grads.grad_map.find(w);
  ASSERT_NE(it, grads.grad_map.end());
  const OpNode& agg = g.op(g.tensor(it->second).producer);
  EXPECT_TRUE(agg.is_grad_agg);
  EXPECT_EQ(agg.type, "add");
  EXPECT_EQ(agg.inplace_input, 0);  // MXNet-style in-place accumulation
}

TEST(Autodiff, AdagradUpdatesAreInPlaceAndGrouped) {
  MlpConfig config;
  config.layer_sizes = {32, 16, 4};
  ModelGraph model = BuildMlp(config);
  ValidateGraph(model.graph);

  int hist_updates = 0;
  int weight_updates = 0;
  for (const OpNode& op : model.graph.ops()) {
    if (op.type == "adagrad_hist") {
      ++hist_updates;
      EXPECT_TRUE(op.is_update);
      EXPECT_EQ(op.inplace_input, 0);
    }
    if (op.type == "adagrad_update") {
      ++weight_updates;
      EXPECT_TRUE(op.is_update);
      EXPECT_EQ(op.inplace_input, 0);
    }
  }
  const int num_params = static_cast<int>(model.graph.ParamIds().size());
  EXPECT_EQ(hist_updates, num_params);
  EXPECT_EQ(weight_updates, num_params);
  // 3W accounting: weights + grads + history.
  EXPECT_EQ(model.ModelStateBytes(), 3 * model.graph.TotalParamBytes());
}

TEST(Autodiff, RnnTimestepBackwardOpsShareUnrollKeys) {
  RnnConfig config;
  config.layers = 2;
  config.hidden = 64;
  config.batch = 8;
  config.timesteps = 5;
  ModelGraph model = BuildRnn(config);
  ValidateGraph(model.graph);

  // Count backward matmuls keyed per timestep for one logical op: interior timesteps
  // must share the same key (boundary t=1 may differ: no dX through the initial state).
  std::map<std::string, int> key_counts;
  for (const OpNode& op : model.graph.ops()) {
    if (op.is_backward && !op.unroll_key.empty() && op.type == "matmul_tn") {
      ++key_counts[op.unroll_key];
    }
  }
  ASSERT_FALSE(key_counts.empty());
  int max_count = 0;
  for (const auto& [key, count] : key_counts) {
    max_count = std::max(max_count, count);
  }
  // Weight-gradient matmuls exist for every timestep and coalesce across them.
  EXPECT_GE(max_count, config.timesteps - 1);
}

TEST(Autodiff, LossGradSeedMatchesLossShape) {
  MlpConfig config;
  config.layer_sizes = {16, 8, 4};
  ModelGraph model = BuildMlp(config);
  ASSERT_NE(model.loss, kNoTensor);
  EXPECT_TRUE(model.graph.tensor(model.loss).shape.empty());  // rank-0 loss
  // The seed gradient input exists with the same (rank-0) shape.
  bool found_seed = false;
  for (const TensorNode& t : model.graph.tensors()) {
    if (t.is_input && t.name.rfind("d_", 0) == 0) {
      found_seed = true;
      EXPECT_TRUE(t.shape.empty());
    }
  }
  EXPECT_TRUE(found_seed);
}

TEST(AutodiffDeath, LossMustDependOnParams) {
  Graph g;
  TensorId x = g.AddInput("x", {8});
  TensorId loss = g.AddOp("reduce_mean_all", {}, {x});
  EXPECT_DEATH(BuildBackward(&g, loss), "does not depend");
}

}  // namespace
}  // namespace tofu
