// JSON layer tests: the writer's output parses back (round-trip), the parser accepts
// the full scalar grammar, and malformed input comes back as kInvalidArgument with a
// position -- never an abort (saved plans arrive from disk, i.e. from users).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tofu/util/json.h"

namespace tofu {
namespace {

TEST(JsonParser, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_DOUBLE_EQ(ParseJson("3.5")->AsNumber(), 3.5);
  EXPECT_DOUBLE_EQ(ParseJson("-0.25e2")->AsNumber(), -25.0);
  EXPECT_EQ(ParseJson("12")->AsInt(), 12);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
  EXPECT_EQ(ParseJson("  42  ")->AsInt(), 42);
}

TEST(JsonParser, StringEscapes) {
  EXPECT_EQ(ParseJson("\"a\\n\\t\\\"\\\\b\"")->AsString(), "a\n\t\"\\b");
  EXPECT_EQ(ParseJson("\"\\u0041\"")->AsString(), "A");
  // 2- and 3-byte UTF-8, and a surrogate pair (U+1F600).
  EXPECT_EQ(ParseJson("\"\\u00e9\"")->AsString(), "\xc3\xa9");
  EXPECT_EQ(ParseJson("\"\\u20ac\"")->AsString(), "\xe2\x82\xac");
  EXPECT_EQ(ParseJson("\"\\ud83d\\ude00\"")->AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonParser, NestedContainers) {
  Result<JsonValue> doc = ParseJson(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  ASSERT_TRUE(doc.ok());
  const JsonValue* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->AsArray().size(), 3u);
  EXPECT_EQ(a->AsArray()[0].AsInt(), 1);
  EXPECT_TRUE(a->AsArray()[2].Find("b")->AsBool());
  EXPECT_TRUE(doc->ObjectAt("c").value()->Find("d")->is_null());
}

TEST(JsonParser, TypedLookupsRecoverFromMistakes) {
  Result<JsonValue> doc = ParseJson(R"({"n": 1.5, "s": "x", "i": 7})");
  ASSERT_TRUE(doc.ok());
  EXPECT_DOUBLE_EQ(doc->NumberAt("n").value(), 1.5);
  EXPECT_EQ(doc->IntAt("i").value(), 7);
  EXPECT_FALSE(doc->IntAt("n").ok());      // 1.5 is not integral
  // Out of int64 range: rejected, not an undefined-behavior cast.
  EXPECT_FALSE(ParseJson(R"({"big": 1e300})")->IntAt("big").ok());
  EXPECT_FALSE(doc->NumberAt("s").ok());   // wrong kind
  EXPECT_FALSE(doc->NumberAt("zz").ok());  // missing
  EXPECT_EQ(doc->StringAt("zz").value_or("dflt"), "dflt");
  EXPECT_EQ(doc->Find("zz"), nullptr);
}

TEST(JsonParser, DuplicateKeysLastWins) {
  EXPECT_EQ(ParseJson(R"({"k": 1, "k": 2})")->IntAt("k").value(), 2);
}

TEST(JsonParser, MalformedInputReturnsInvalidArgument) {
  const char* bad[] = {
      "",            // empty
      "{",           // unterminated object
      "[1, 2",       // unterminated array
      "[1 2]",       // missing comma
      "{\"a\" 1}",   // missing colon
      "{a: 1}",      // unquoted key
      "\"abc",       // unterminated string
      "\"\\q\"",     // bad escape
      "\"\\u12g4\"", // bad hex digit
      "\"\\ud800\"", // unpaired surrogate
      "01",          // leading zero then trailing garbage
      "1.",          // no digits after point
      "1e",          // no exponent digits
      "-",           // bare minus
      "nul",         // truncated literal
      "true false",  // trailing value
      "\"a\tb\"",    // raw control character
      "1e999",       // overflows double -- must not silently become inf
      "-1e999",
  };
  for (const char* text : bad) {
    Result<JsonValue> r = ParseJson(text);
    EXPECT_FALSE(r.ok()) << "should reject: " << text;
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
}

TEST(JsonParser, DepthCapRejectsAdversarialNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonRoundTrip, WriterOutputParsesBack) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("line1\nline2 \"quoted\" \\slash");
  w.Key("pi").Number(3.141592653589793);
  w.Key("big").Number(1.7976931348623157e308);
  w.Key("neg").Int(-42);
  w.Key("flags").BeginArray();
  w.Bool(true).Bool(false);
  w.EndArray();
  w.EndObject();

  Result<JsonValue> doc = ParseJson(w.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->StringAt("name").value(), "line1\nline2 \"quoted\" \\slash");
  // %.17g survives the round trip bit-exactly.
  EXPECT_EQ(doc->NumberAt("pi").value(), 3.141592653589793);
  EXPECT_EQ(doc->NumberAt("big").value(), 1.7976931348623157e308);
  EXPECT_EQ(doc->IntAt("neg").value(), -42);
  EXPECT_TRUE(doc->ArrayAt("flags").value()->AsArray()[0].AsBool());
}

TEST(JsonFiles, ReadTextFileReportsMissing) {
  Result<std::string> missing = ReadTextFile("/nonexistent/definitely_not_here.json");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace tofu
