// Interconnect unit tests: routes and closed-form critical-path costs per topology,
// collective-algorithm selection (ring vs halving-doubling allreduce exactly where the
// alpha-beta model predicts), and the StepBandwidths values the partition search feeds
// into PartitionOptions::step_bandwidths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tofu/interconnect/interconnect.h"

namespace tofu {
namespace {

constexpr double kB = 1e9;    // 1 GB/s baseline link bandwidth
constexpr double kLat = 1e-6; // 1 us per-hop wire latency
constexpr double kTol = 1e-12;

TrafficMatrix SingleFlow(int n, int src, int dst, double bytes) {
  TrafficMatrix tm(n);
  tm.At(src, dst) = bytes;
  return tm;
}

// ---------------------------------------------------------------------- topologies

TEST(Interconnect, RingRoutesFollowTheDirection) {
  auto net = MakeRing(8, kB, kLat);
  EXPECT_EQ(net->num_workers(), 8);
  EXPECT_EQ(net->name(), "ring");
  EXPECT_EQ(net->Route(0, 1).size(), 1u);
  EXPECT_EQ(net->Route(0, 3).size(), 3u);
  // Unidirectional: going "backwards" wraps the long way around.
  EXPECT_EQ(net->Route(3, 0).size(), 5u);
  EXPECT_EQ(net->Route(7, 0).size(), 1u);
  EXPECT_TRUE(net->Route(4, 4).empty());
}

TEST(Interconnect, RingSingleFlowPaysNarrowestHopPlusLatency) {
  auto net = MakeRing(8, kB, kLat);
  const double b = 1e6;
  // One hop: bytes/bw + 1 hop of latency.
  EXPECT_NEAR(net->TransferSeconds(SingleFlow(8, 0, 1, b)), b / kB + kLat, kTol);
  // Two hops: same serial bytes (store-and-forward pipelines), two hops of latency.
  EXPECT_NEAR(net->TransferSeconds(SingleFlow(8, 0, 2, b)), b / kB + 2 * kLat, kTol);
}

TEST(Interconnect, RingNeighborTrafficIsContentionFree) {
  auto net = MakeRing(8, kB, kLat);
  const double b = 1e6;
  TrafficMatrix tm(8);
  for (int i = 0; i < 8; ++i) {
    tm.At(i, (i + 1) % 8) = b;
  }
  // All eight flows use disjoint links: same cost as a single flow.
  EXPECT_NEAR(net->TransferSeconds(tm), b / kB + kLat, kTol);
}

TEST(Interconnect, RingLongRangeFlowsCongestSharedLinks) {
  auto net = MakeRing(4, kB, kLat);
  const double b = 1e6;
  TrafficMatrix tm(4);
  tm.At(0, 2) = b;  // links 0,1
  tm.At(1, 3) = b;  // links 1,2
  // Link 1 carries both flows: congestion 2b/B beats each flow's b/B + 2 hops.
  EXPECT_NEAR(net->TransferSeconds(tm), 2 * b / kB, kTol);
}

TEST(Interconnect, FullMeshChargesEgressAndIngressPorts) {
  auto net = MakeFullMesh(4, kB, kLat);
  EXPECT_EQ(net->name(), "fullmesh");
  EXPECT_EQ(net->Route(0, 1).size(), 2u);  // egress(0), ingress(1)
  const double b = 1e6;
  EXPECT_NEAR(net->TransferSeconds(SingleFlow(4, 0, 1, b)), b / kB + 2 * kLat, kTol);
  // Disjoint pairs never contend.
  TrafficMatrix disjoint(4);
  disjoint.At(0, 1) = b;
  disjoint.At(2, 3) = b;
  EXPECT_NEAR(net->TransferSeconds(disjoint), b / kB + 2 * kLat, kTol);
  // Two flows out of one worker serialize on its egress port.
  TrafficMatrix fanout(4);
  fanout.At(0, 1) = b;
  fanout.At(0, 2) = b;
  EXPECT_NEAR(net->TransferSeconds(fanout), 2 * b / kB, kTol);
}

TEST(Interconnect, HierarchyCrossGroupFlowsSerializeOnTheUplink) {
  const double leaf = 4e9, uplink = 1e9;
  auto net = MakeHierarchy(2, 2, leaf, uplink, kLat);
  EXPECT_EQ(net->name(), "hierarchy");
  EXPECT_EQ(net->num_workers(), 4);
  EXPECT_EQ(net->Route(0, 1).size(), 2u);  // intra-group: leaf up, leaf down
  EXPECT_EQ(net->Route(0, 2).size(), 4u);  // cross-group adds both uplinks
  const double b = 1e6;
  EXPECT_NEAR(net->TransferSeconds(SingleFlow(4, 0, 1, b)), b / leaf + 2 * kLat, kTol);
  EXPECT_NEAR(net->TransferSeconds(SingleFlow(4, 0, 2, b)), b / uplink + 4 * kLat, kTol);
  // Both cross-group flows of group 0 share uplink-up[0]: 2b serializes on it.
  TrafficMatrix cross(4);
  cross.At(0, 2) = b;
  cross.At(1, 3) = b;
  EXPECT_NEAR(net->TransferSeconds(cross), 2 * b / uplink, kTol);
}

TEST(Interconnect, FingerprintsSeparateTopologiesAndParameters) {
  EXPECT_NE(MakeRing(8, kB)->Fingerprint(), MakeRing(8, 2 * kB)->Fingerprint());
  EXPECT_NE(MakeRing(8, kB)->Fingerprint(), MakeRing(4, kB)->Fingerprint());
  EXPECT_NE(MakeRing(8, kB)->Fingerprint(), MakeFullMesh(8, kB)->Fingerprint());
  EXPECT_NE(MakeHierarchy(2, 4, kB, kB)->Fingerprint(),
            MakeHierarchy(4, 2, kB, kB)->Fingerprint());
  EXPECT_EQ(MakeRing(8, kB, kLat)->Fingerprint(), MakeRing(8, kB, kLat)->Fingerprint());
}

// --------------------------------------------------------------------- collectives

TEST(Interconnect, RingAllReduceRoundsAreNearestNeighbour) {
  auto net = MakeRing(8, kB, kLat);
  const double b = 8e6;
  auto rounds = net->AllReduceRounds(b, CollectiveAlgorithm::kRingAllReduce);
  ASSERT_EQ(rounds.size(), 14u);  // 2(n-1)
  for (const TrafficMatrix& round : rounds) {
    EXPECT_NEAR(round.Total(), b, kTol);  // n segments of b/n
    for (int i = 0; i < 8; ++i) {
      EXPECT_NEAR(round.At(i, (i + 1) % 8), b / 8, kTol);
    }
  }
}

TEST(Interconnect, HalvingDoublingRoundsHalvePayloads) {
  auto net = MakeFullMesh(8, kB, kLat);
  const double b = 8e6;
  auto rounds = net->AllReduceRounds(b, CollectiveAlgorithm::kHalvingDoubling);
  ASSERT_EQ(rounds.size(), 6u);  // 2 log2(8)
  const double payloads[] = {b / 2, b / 4, b / 8, b / 8, b / 4, b / 2};
  const int distances[] = {4, 2, 1, 1, 2, 4};
  for (size_t r = 0; r < rounds.size(); ++r) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_NEAR(rounds[r].At(i, i ^ distances[r]), payloads[r], kTol)
          << "round " << r << " worker " << i;
    }
  }
}

TEST(Interconnect, NonPowerOfTwoPaysFullVectorFoldRounds) {
  auto net = MakeFullMesh(6, kB, kLat);
  const double b = 4e6;
  auto rounds = net->AllReduceRounds(b, CollectiveAlgorithm::kHalvingDoubling);
  // fold + 2 log2(4) exchanges + unfold.
  ASSERT_EQ(rounds.size(), 6u);
  EXPECT_NEAR(rounds.front().At(4, 0), b, kTol);
  EXPECT_NEAR(rounds.front().At(5, 1), b, kTol);
  EXPECT_NEAR(rounds.back().At(0, 4), b, kTol);
  EXPECT_NEAR(rounds.back().At(1, 5), b, kTol);
}

TEST(Interconnect, MeshAllReduceMatchesAlphaBetaClosedForm) {
  auto net = MakeFullMesh(8, kB, kLat);
  const double b = 8e6;
  // Every ring round is a contention-free matching: (b/8)/B + 2 hops; 14 rounds.
  EXPECT_NEAR(net->AllReduceSeconds(b, CollectiveAlgorithm::kRingAllReduce),
              14 * ((b / 8) / kB + 2 * kLat), 1e-9);
  // HD: payload halves each exchange; same 1.75 b/B serial bytes, 12 vs 28 latencies.
  EXPECT_NEAR(net->AllReduceSeconds(b, CollectiveAlgorithm::kHalvingDoubling),
              1.75 * b / kB + 12 * kLat, 1e-9);
}

TEST(Interconnect, HalvingDoublingWinsOnPowerOfTwoMesh) {
  // Same serial bytes, fewer rounds: HD is strictly cheaper at every payload when no
  // link is shared and n is a power of two.
  auto net = MakeFullMesh(8, kB, kLat);
  for (double b : {1e3, 1e6, 1e9}) {
    EXPECT_LT(net->AllReduceSeconds(b, CollectiveAlgorithm::kHalvingDoubling),
              net->AllReduceSeconds(b, CollectiveAlgorithm::kRingAllReduce));
    EXPECT_EQ(net->PickAllReduce(b), CollectiveAlgorithm::kHalvingDoubling);
  }
}

TEST(Interconnect, RingWinsLargePayloadsOnRingTopology) {
  // HD's distance-4 exchanges route every flow across half the ring: each link carries
  // four b/2 payloads, so one such round already costs 2b/B -- more than the whole
  // nearest-neighbour ring schedule (1.75 b/B).
  auto net = MakeRing(8, kB, kLat);
  const double b = 64e6;
  EXPECT_LT(net->AllReduceSeconds(b, CollectiveAlgorithm::kRingAllReduce),
            net->AllReduceSeconds(b, CollectiveAlgorithm::kHalvingDoubling));
  EXPECT_EQ(net->PickAllReduce(b), CollectiveAlgorithm::kRingAllReduce);
}

TEST(Interconnect, NonPowerOfTwoCrossoverOnMesh) {
  // n = 6: HD pays two full-vector fold rounds (3.5 b/B serial bytes vs ring's 1.67)
  // but only 12 latencies vs ring's 20 -- so HD wins small payloads, ring wins large.
  auto net = MakeFullMesh(6, kB, kLat);
  EXPECT_EQ(net->PickAllReduce(1e2), CollectiveAlgorithm::kHalvingDoubling);
  EXPECT_EQ(net->PickAllReduce(64e6), CollectiveAlgorithm::kRingAllReduce);
}

TEST(Interconnect, SharedUplinkContentionFavorsRingAtLargePayloads) {
  // Oversubscribed hierarchy: HD's long-distance rounds push every worker's payload
  // through the two uplinks at once (2b per uplink per round); the ring schedule sends
  // one b/8 segment across each uplink per round. Ring wins once bytes dominate.
  auto net = MakeHierarchy(2, 4, kB, kB / 4, kLat);
  const double big = 64e6;
  EXPECT_LT(net->AllReduceSeconds(big, CollectiveAlgorithm::kRingAllReduce),
            net->AllReduceSeconds(big, CollectiveAlgorithm::kHalvingDoubling));
  EXPECT_EQ(net->PickAllReduce(big), CollectiveAlgorithm::kRingAllReduce);
  // At tiny payloads the fewer (6 vs 14) rounds still win despite the uplink.
  EXPECT_EQ(net->PickAllReduce(1e2), CollectiveAlgorithm::kHalvingDoubling);
}

TEST(Interconnect, PickAllReduceIsTheArgmin) {
  auto topologies = {MakeRing(8, kB, kLat), MakeFullMesh(8, kB, kLat),
                     MakeFullMesh(6, kB, kLat), MakeHierarchy(2, 4, kB, kB / 4, kLat)};
  for (const auto& net : topologies) {
    for (double b : {1e2, 1e4, 1e6, 1e8}) {
      const double ring = net->AllReduceSeconds(b, CollectiveAlgorithm::kRingAllReduce);
      const double hd = net->AllReduceSeconds(b, CollectiveAlgorithm::kHalvingDoubling);
      const CollectiveAlgorithm pick = net->PickAllReduce(b);
      if (hd < ring) {
        EXPECT_EQ(pick, CollectiveAlgorithm::kHalvingDoubling);
      } else {
        EXPECT_EQ(pick, CollectiveAlgorithm::kRingAllReduce);  // ties prefer ring
      }
    }
  }
}

// ------------------------------------------------------------------ step bandwidths

TEST(Interconnect, StepTrafficSumsToTotalBytes) {
  auto net = MakeHierarchy(2, 4, kB, kB / 4, kLat);
  const std::vector<int> factors = {2, 2, 2};
  for (size_t step = 0; step < factors.size(); ++step) {
    EXPECT_NEAR(net->StepTraffic(factors, step, 3e6).Total(), 3e6, 1e-6);
  }
}

TEST(Interconnect, MeshStepBandwidthsAreUniform) {
  // A symmetric port-limited mesh prices every recursive step identically, so the
  // factor-ordering search sees exactly the scalar-bandwidth landscape.
  auto net = MakeFullMesh(8, kB, kLat);
  const std::vector<double> bw = net->StepBandwidths({2, 2, 2});
  ASSERT_EQ(bw.size(), 3u);
  // Worst port per unit of traffic carries 1/8 of the bytes at every step.
  EXPECT_NEAR(bw[0], 8 * kB, 1e-3);
  EXPECT_NEAR(bw[1], 8 * kB, 1e-3);
  EXPECT_NEAR(bw[2], 8 * kB, 1e-3);
}

TEST(Interconnect, HierarchyStepZeroIsUplinkBound) {
  // The first 2-way step splits the machine across the two groups: half of all traffic
  // crosses each uplink, so the effective bandwidth collapses to 2 * uplink. Later
  // steps stay group-local on the leaf links.
  const double leaf = kB, uplink = kB / 4;
  auto net = MakeHierarchy(2, 4, leaf, uplink, kLat);
  const std::vector<double> bw = net->StepBandwidths({2, 2, 2});
  ASSERT_EQ(bw.size(), 3u);
  EXPECT_NEAR(bw[0], 2 * uplink, 1e-3);
  EXPECT_NEAR(bw[1], 8 * leaf, 1e-3);
  EXPECT_NEAR(bw[2], 8 * leaf, 1e-3);
  EXPECT_LT(bw[0], bw[1]);
}

TEST(Interconnect, StepBandwidthsShiftWithFactorPlacement) {
  // 12 workers, hierarchy 3x4: the 3-way factor crossing the groups is uplink-bound
  // wherever it lands, and it lands on different steps in different orderings -- the
  // signal the factor-ordering search in partition/recursive.cc optimizes over.
  auto net = MakeHierarchy(3, 4, kB, kB / 4, kLat);
  const std::vector<double> coarse_first = net->StepBandwidths({3, 2, 2});
  const std::vector<double> coarse_last = net->StepBandwidths({2, 2, 3});
  ASSERT_EQ(coarse_first.size(), 3u);
  ASSERT_EQ(coarse_last.size(), 3u);
  // With the 3-way split first, step 0 is exactly the group boundary (uplink-bound);
  // the later 2-way steps stay on the leaf links and are strictly faster.
  EXPECT_LT(coarse_first[0], coarse_first[1]);
  EXPECT_LT(coarse_first[0], coarse_first[2]);
  // Orderings are genuinely different landscapes, not a permutation-invariant scalar.
  EXPECT_NE(coarse_first, coarse_last);
}

}  // namespace
}  // namespace tofu
