// Build-sanity smoke test: the quickstart.cpp flow in miniature. Builds a small MLP
// training graph, partitions it for 4 workers with the default recursive search, and
// checks the resulting plan is non-empty and internally consistent. If this test links
// and passes, the library, the model builders, and the partitioner facade are all wired
// up correctly — it is the first thing to consult when the build itself is in question.
#include <gtest/gtest.h>

#include "tofu/core/partitioner.h"
#include "tofu/core/report.h"
#include "tofu/models/mlp.h"
#include "tofu/sim/runtimes.h"

namespace tofu {
namespace {

TEST(BuildSanity, QuickstartFlowProducesValidPlan) {
  MlpConfig config;
  config.layer_sizes = {256, 512, 256, 10};
  config.batch = 64;
  ModelGraph model = BuildMlp(config);
  ASSERT_GT(model.graph.num_ops(), 0);
  ASSERT_GT(model.graph.num_tensors(), 0);
  ValidateGraph(model.graph);

  constexpr int kWorkers = 4;
  Partitioner partitioner;
  PartitionPlan plan = partitioner.Partition(model.graph, kWorkers);

  // Non-empty: 4 workers factorize as 2 x 2, so the plan must have recursive steps.
  EXPECT_EQ(plan.num_workers, kWorkers);
  ASSERT_FALSE(plan.steps.empty());
  ASSERT_EQ(plan.steps.size(), plan.step_factors.size());
  int product = 1;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    EXPECT_EQ(plan.steps[i].ways, plan.step_factors[i]);
    product *= plan.step_factors[i];
  }
  EXPECT_EQ(product, kWorkers);

  // Validates: every step describes every tensor and op, and every 2D weight ends up
  // actually split (the paper partitions all substantial tensors).
  for (const BasicPlan& step : plan.steps) {
    EXPECT_EQ(static_cast<int>(step.tensor_cut.size()), model.graph.num_tensors());
    EXPECT_EQ(static_cast<int>(step.op_strategy.size()), model.graph.num_ops());
  }
  // Weights above the replication threshold must actually be split; tiny ones may stay
  // replicated (strategy.h: kReplicateThresholdBytes).
  for (TensorId w : model.graph.ParamIds()) {
    const TensorNode& t = model.graph.tensor(w);
    if (t.rank() != 2 || t.bytes() <= kReplicateThresholdBytes) continue;
    std::vector<int> splits = plan.TensorSplits(model.graph, w);
    int total_split = 1;
    for (int s : splits) total_split *= s;
    EXPECT_GT(total_split, 1) << "weight " << t.name << " left unpartitioned";
    EXPECT_LT(plan.ShardBytes(model.graph, w), t.bytes());
  }

  // The summary renderer and the simulator both accept the plan.
  EXPECT_FALSE(PlanSummary(model.graph, plan).empty());
  ThroughputResult result = RunPlanThroughput(model, plan, K80Cluster());
  EXPECT_GT(result.samples_per_second, 0.0);
  EXPECT_FALSE(result.oom);
}

}  // namespace
}  // namespace tofu
