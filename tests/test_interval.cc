// Tests for the symbolic interval domain (paper §4.2, Figure 4): affine forms over
// symbolic upper bounds, the exact Figure-4 arithmetic, unions, and algebraic properties
// checked over parameterized sweeps.
#include <gtest/gtest.h>

#include "tofu/tdl/interval.h"

namespace tofu {
namespace {

TEST(AffineForm, SymbolAndConstant) {
  AffineForm f = AffineForm::Symbol(3, 1, 2.0);
  EXPECT_EQ(f.num_symbols(), 3);
  EXPECT_DOUBLE_EQ(f.coeff(0), 0.0);
  EXPECT_DOUBLE_EQ(f.coeff(1), 2.0);
  EXPECT_DOUBLE_EQ(f.constant(), 0.0);

  AffineForm c = AffineForm::Constant(3, 7.0);
  EXPECT_DOUBLE_EQ(c.constant(), 7.0);
  EXPECT_TRUE(c.IsNonNegative());
}

TEST(AffineForm, Arithmetic) {
  AffineForm a = AffineForm::Symbol(2, 0);       // X0
  AffineForm b = AffineForm::Symbol(2, 1, 3.0);  // 3*X1
  AffineForm sum = a + b + 5.0;
  EXPECT_DOUBLE_EQ(sum.coeff(0), 1.0);
  EXPECT_DOUBLE_EQ(sum.coeff(1), 3.0);
  EXPECT_DOUBLE_EQ(sum.constant(), 5.0);

  AffineForm scaled = sum * 0.5;
  EXPECT_DOUBLE_EQ(scaled.coeff(1), 1.5);
  EXPECT_DOUBLE_EQ(scaled.constant(), 2.5);

  AffineForm diff = scaled - scaled;
  EXPECT_TRUE(diff.IsZero());
}

TEST(AffineForm, EvalSubstitutesConcreteBounds) {
  AffineForm f = AffineForm::Symbol(2, 0, 2.0) + AffineForm::Symbol(2, 1, -1.0) + 3.0;
  EXPECT_DOUBLE_EQ(f.Eval({10, 4}), 2.0 * 10 - 4 + 3);
}

TEST(AffineForm, ToStringReadable) {
  AffineForm f = AffineForm::Symbol(2, 0) + AffineForm::Symbol(2, 1, 0.5) + 2.0;
  EXPECT_EQ(f.ToString({"X", "Y"}), "X+0.5*Y+2");
}

TEST(SymInterval, FullRangeAndSlice) {
  SymInterval full = SymInterval::FullRange(2, 0);
  EXPECT_TRUE(full.lo.IsZero());
  EXPECT_DOUBLE_EQ(full.hi.coeff(0), 1.0);

  SymInterval half = SymInterval::Slice(2, 0, 0.5, 1.0);
  EXPECT_DOUBLE_EQ(half.lo.coeff(0), 0.5);
  EXPECT_DOUBLE_EQ(half.hi.coeff(0), 1.0);
  // Width of the upper half is X0/2.
  AffineForm width = half.Width();
  EXPECT_DOUBLE_EQ(width.coeff(0), 0.5);
}

// Figure 4: I +- k, I * k, I / k, I +- I'.
TEST(SymInterval, Figure4Arithmetic) {
  SymInterval i = SymInterval::FullRange(1, 0);  // [0, X]
  SymInterval shifted = i + 2.0;                 // [2, X+2]
  EXPECT_DOUBLE_EQ(shifted.lo.constant(), 2.0);
  EXPECT_DOUBLE_EQ(shifted.hi.constant(), 2.0);
  EXPECT_DOUBLE_EQ(shifted.hi.coeff(0), 1.0);

  SymInterval scaled = i * 3.0;  // [0, 3X]
  EXPECT_DOUBLE_EQ(scaled.hi.coeff(0), 3.0);

  SymInterval neg = i * -1.0;  // [-X, 0]: endpoints swap
  EXPECT_DOUBLE_EQ(neg.lo.coeff(0), -1.0);
  EXPECT_TRUE(neg.hi.IsZero());

  SymInterval sum = i + shifted;  // [2, 2X+2]
  EXPECT_DOUBLE_EQ(sum.lo.constant(), 2.0);
  EXPECT_DOUBLE_EQ(sum.hi.coeff(0), 2.0);

  SymInterval diff = i - i;  // [-X, X]
  EXPECT_DOUBLE_EQ(diff.lo.coeff(0), -1.0);
  EXPECT_DOUBLE_EQ(diff.hi.coeff(0), 1.0);
}

TEST(SymInterval, UnionIsCoefficientWiseHull) {
  SymInterval a = SymInterval::Slice(2, 0, 0.0, 0.5);
  SymInterval b = SymInterval::Slice(2, 0, 0.5, 1.0);
  SymInterval u = SymInterval::Union(a, b);
  EXPECT_TRUE(u.ApproxEquals(SymInterval::FullRange(2, 0)));
}

TEST(SymInterval, UnionContainsBothArguments) {
  SymInterval a = SymInterval::FullRange(2, 0) + 3.0;
  SymInterval b = SymInterval::FullRange(2, 1) * 2.0;
  SymInterval u = SymInterval::Union(a, b);
  // Evaluate at a concrete bound assignment and check containment.
  const std::vector<std::int64_t> bounds = {7, 5};
  EXPECT_LE(u.lo.Eval(bounds), a.lo.Eval(bounds));
  EXPECT_LE(u.lo.Eval(bounds), b.lo.Eval(bounds));
  EXPECT_GE(u.hi.Eval(bounds), a.hi.Eval(bounds));
  EXPECT_GE(u.hi.Eval(bounds), b.hi.Eval(bounds));
}

// Parameterized property sweep: scaling by k then by 1/k round-trips, and width scales
// linearly, across a range of scale factors.
class IntervalScaleProperty : public ::testing::TestWithParam<double> {};

TEST_P(IntervalScaleProperty, ScaleRoundTrip) {
  const double k = GetParam();
  SymInterval i = SymInterval::Slice(2, 1, 0.25, 0.75) + 1.0;
  SymInterval scaled = (i * k) * (1.0 / k);
  EXPECT_TRUE(scaled.ApproxEquals(i, 1e-9)) << "k=" << k;
}

TEST_P(IntervalScaleProperty, WidthScalesLinearly) {
  const double k = GetParam();
  SymInterval i = SymInterval::Slice(3, 2, 0.0, 0.5);
  AffineForm w = i.Width();
  AffineForm w_scaled = (i * k).Width();
  AffineForm expect = w * std::abs(k);
  EXPECT_TRUE(w_scaled.ApproxEquals(expect, 1e-9)) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Scales, IntervalScaleProperty,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0, -1.0, -2.0, 7.0, 0.125));

// Commutativity / associativity of interval addition over parameterized slices.
struct SlicePair {
  double a_lo, a_hi, b_lo, b_hi;
};

class IntervalAddProperty : public ::testing::TestWithParam<SlicePair> {};

TEST_P(IntervalAddProperty, AdditionCommutes) {
  const SlicePair p = GetParam();
  SymInterval a = SymInterval::Slice(2, 0, p.a_lo, p.a_hi);
  SymInterval b = SymInterval::Slice(2, 1, p.b_lo, p.b_hi);
  EXPECT_TRUE((a + b).ApproxEquals(b + a));
}

INSTANTIATE_TEST_SUITE_P(Slices, IntervalAddProperty,
                         ::testing::Values(SlicePair{0, 1, 0, 1}, SlicePair{0, 0.5, 0.5, 1},
                                           SlicePair{0.25, 0.75, 0, 0.25},
                                           SlicePair{0, 0.125, 0.875, 1}));

}  // namespace
}  // namespace tofu
