// Differential harness: every analytic Interconnect cost is cross-checked against the
// event simulator's link-level queueing (interconnect/sim_bridge.h) on seeded random
// traffic matrices, collective round schedules, and whole partition plans.
//
// The contract, asserted on every sample:
//
//   analytic <= sim <= analytic * kSimEfficiencySlack
//
// The left inequality is exact by construction -- the analytic congestion/dilation
// number is a lower bound on ANY schedule, and the simulated makespan is a schedule.
// The right inequality is the achievability claim: FIFO link queueing with 4-chunks-
// per-hop store-and-forward pipelining stays within a small constant of the bound.
// The slack budgets (h-1)/(4h) < 25% pipeline fill for multi-hop routes plus FIFO
// head-of-line blocking on shared links; 1.6 holds with margin across every topology
// class here (the bench's whole-plan ratios sit at 1.01-1.13).
//
// Topology classes exercised (>= 3, per the acceptance criteria): unidirectional
// rings, port-limited full meshes, and 2-level oversubscribed hierarchies -- including
// non-power-of-two worker counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tofu/interconnect/interconnect.h"
#include "tofu/interconnect/sim_bridge.h"
#include "tofu/models/mlp.h"
#include "tofu/partition/baselines.h"
#include "tofu/partition/recursive.h"

namespace tofu {
namespace {

// One-sided bound is exact; the efficiency slack is the empirical contract above.
constexpr double kLowerSlop = 1.0 + 1e-9;
constexpr double kSimEfficiencySlack = 1.6;

// Deterministic 64-bit LCG (Knuth's MMIX constants): the same matrices every run, on
// every machine.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  double Next01() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state_ >> 11) /
           static_cast<double>(1ull << 53);
  }

 private:
  std::uint64_t state_;
};

struct NamedNet {
  std::string label;
  std::shared_ptr<const Interconnect> net;
};

// Ring, mesh, and hierarchy classes; 8, 12, and non-power-of-two worker counts.
std::vector<NamedNet> Topologies() {
  return {
      {"ring8", MakeRing(8, 1e9, 1e-6)},
      {"ring5", MakeRing(5, 1e9, 1e-6)},
      {"fullmesh8", MakeFullMesh(8, 1e9, 1e-6)},
      {"fullmesh6", MakeFullMesh(6, 1e9, 1e-6)},
      {"hier2x4", MakeHierarchy(2, 4, 1e9, 0.25e9, 1e-6)},
      {"hier3x4", MakeHierarchy(3, 4, 1e9, 0.5e9, 1e-6)},
  };
}

TrafficMatrix RandomDense(int n, Lcg* rng, double scale) {
  TrafficMatrix tm(n);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s != d) {
        tm.At(s, d) = (0.1 + 0.9 * rng->Next01()) * scale;
      }
    }
  }
  return tm;
}

TrafficMatrix RandomSparse(int n, Lcg* rng, double scale) {
  TrafficMatrix tm(n);
  bool any = false;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s != d && rng->Next01() < 0.25) {
        tm.At(s, d) = (0.1 + 0.9 * rng->Next01()) * scale;
        any = true;
      }
    }
  }
  if (!any) {
    tm.At(0, n - 1) = scale;  // a seed that rolls all-zeros still exercises the nets
  }
  return tm;
}

TrafficMatrix Hotspot(int n, Lcg* rng, double scale) {
  TrafficMatrix tm(n);
  const int src = static_cast<int>(rng->Next01() * n) % n;
  for (int d = 0; d < n; ++d) {
    if (d != src) {
      tm.At(src, d) = (0.5 + 0.5 * rng->Next01()) * scale;
    }
  }
  return tm;
}

void ExpectBracketed(const std::string& what, double analytic, double sim) {
  EXPECT_GT(analytic, 0.0) << what;
  EXPECT_LE(analytic, sim * kLowerSlop)
      << what << ": analytic bound exceeds the simulated schedule";
  EXPECT_LE(sim, analytic * kSimEfficiencySlack)
      << what << ": simulated schedule drifted above the achievability slack"
      << " (ratio " << sim / analytic << ")";
}

TEST(InterconnectDiff, RandomTrafficMatricesBracketTheSim) {
  Lcg rng(0x7075f00du);
  for (const NamedNet& t : Topologies()) {
    const int n = t.net->num_workers();
    for (int trial = 0; trial < 6; ++trial) {
      TrafficMatrix tm;
      const char* shape;
      switch (trial % 3) {
        case 0:
          tm = RandomDense(n, &rng, 1e6);
          shape = "dense";
          break;
        case 1:
          tm = RandomSparse(n, &rng, 4e6);
          shape = "sparse";
          break;
        default:
          tm = Hotspot(n, &rng, 2e6);
          shape = "hotspot";
          break;
      }
      ExpectBracketed(t.label + "/" + shape + "#" + std::to_string(trial),
                      t.net->TransferSeconds(tm), SimTransferSeconds(*t.net, tm));
    }
  }
}

TEST(InterconnectDiff, RelativeOrderingAgreesWhenWellSeparated) {
  // If the analytic model says matrix A costs >= 1.3x matrix B, the simulator must
  // agree about which is slower -- the property the search actually relies on.
  Lcg rng(0xba5eba11u);
  for (const NamedNet& t : Topologies()) {
    const int n = t.net->num_workers();
    std::vector<std::pair<double, double>> samples;  // (analytic, sim)
    for (int trial = 0; trial < 8; ++trial) {
      const TrafficMatrix tm = trial % 2 == 0 ? RandomDense(n, &rng, 5e5 * (trial + 1))
                                              : RandomSparse(n, &rng, 2e6);
      samples.emplace_back(t.net->TransferSeconds(tm), SimTransferSeconds(*t.net, tm));
    }
    for (size_t i = 0; i < samples.size(); ++i) {
      for (size_t j = 0; j < samples.size(); ++j) {
        if (samples[i].first >= 1.3 * samples[j].first) {
          EXPECT_GT(samples[i].second, samples[j].second)
              << t.label << ": analytic says sample " << i << " is >=1.3x sample " << j
              << " but the sim disagrees";
        }
      }
    }
  }
}

TEST(InterconnectDiff, CollectiveRoundSchedulesBracketTheSim) {
  // Both allreduce algorithms, latency-bound and bandwidth-bound payloads: the sum of
  // per-round analytic bounds must bracket the barrier-synchronized simulation.
  for (const NamedNet& t : Topologies()) {
    for (CollectiveAlgorithm algo : {CollectiveAlgorithm::kRingAllReduce,
                                     CollectiveAlgorithm::kHalvingDoubling}) {
      for (double bytes : {32e3, 64e6}) {
        ExpectBracketed(
            t.label + "/" + CollectiveName(algo) + "@" + std::to_string(bytes),
            t.net->AllReduceSeconds(bytes, algo),
            SimAllReduceSeconds(*t.net, bytes, algo));
      }
    }
  }
}

// Analytic counterpart of SimPlanCommSeconds: identical factors, weighted bytes, and
// StepTraffic pattern -- only the pricing differs (closed-form bound vs. simulated
// schedule), so a gap between the two is purely a model-vs-schedule gap.
double AnalyticPlanCommSeconds(const Interconnect& net, const PartitionPlan& plan) {
  std::vector<int> factors;
  factors.reserve(plan.steps.size());
  for (const BasicPlan& step : plan.steps) {
    factors.push_back(step.ways);
  }
  double total = 0.0;
  double groups = 1.0;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const double weighted = i < plan.weighted_step_costs.size()
                                ? plan.weighted_step_costs[i]
                                : groups * plan.steps[i].comm_bytes;
    groups *= static_cast<double>(plan.steps[i].ways);
    if (weighted > 0.0) {
      total += net.TransferSeconds(net.StepTraffic(factors, i, weighted));
    }
  }
  return total;
}

TEST(InterconnectDiff, WholePlansBracketAndOrderAgainstTheSim) {
  // A weight-heavy, small-batch MLP: activations are ~100x smaller than the weights,
  // so replicating model state (data parallelism) is decisively the wrong plan.
  MlpConfig config;
  config.batch = 32;
  config.layer_sizes = {4096, 4096, 4096, 4096, 4096};
  ModelGraph model = BuildMlp(config);
  auto net = MakeHierarchy(2, 4, 21e9, 7e9, 15e-6);

  PartitionOptions options;
  options.step_bandwidths = net->StepBandwidths(FactorizeWorkers(8));
  std::vector<std::pair<std::string, PartitionPlan>> plans;
  plans.emplace_back("tofu", RecursivePartition(model.graph, 8, options));
  plans.emplace_back("equalchop", EqualChopPlan(model.graph, 8, options));
  plans.emplace_back("dataparallel", DataParallelPlan(model.graph, 8));
  plans.emplace_back("allrow", AllRowGreedyPlan(model.graph, 8));

  std::vector<std::pair<double, double>> samples;  // (analytic, sim)
  for (const auto& [label, plan] : plans) {
    const double analytic = AnalyticPlanCommSeconds(*net, plan);
    const double sim = SimPlanCommSeconds(*net, plan);
    ExpectBracketed("plan/" + label, analytic, sim);
    samples.emplace_back(analytic, sim);
  }
  // Plan ordering: where the analytic estimates are well separated, the simulated
  // critical paths rank the plans the same way -- so gating a plan on the analytic
  // number picks the same winner the simulator would.
  for (size_t i = 0; i < samples.size(); ++i) {
    for (size_t j = 0; j < samples.size(); ++j) {
      if (samples[i].first >= 1.3 * samples[j].first) {
        EXPECT_GT(samples[i].second, samples[j].second)
            << "plans " << plans[i].first << " vs " << plans[j].first;
      }
    }
  }
  // No cross-algorithm superiority assertion: the baselines account replicated model
  // state under their own conventions (Figure 10 reproduction), so absolute totals are
  // only comparable within one algorithm's plan -- which is exactly the comparison the
  // ordering loop above makes under both pricings.
}

}  // namespace
}  // namespace tofu
