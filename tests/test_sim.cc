// Event-simulator tests: resource serialization, compute/communication overlap, buffer
// lifetime accounting, OOM detection, and determinism.
#include <gtest/gtest.h>

#include "tofu/sim/event_sim.h"

namespace tofu {
namespace {

SimNode Compute(int device, double seconds, std::vector<std::int32_t> deps = {},
                std::int64_t output_bytes = 0) {
  SimNode n;
  n.kind = SimNode::Kind::kCompute;
  n.device = device;
  n.duration_s = seconds;
  n.deps = std::move(deps);
  n.output_bytes = output_bytes;
  return n;
}

SimNode P2P(int device, double bytes, std::vector<std::int32_t> deps = {}) {
  SimNode n;
  n.kind = SimNode::Kind::kP2P;
  n.device = device;
  n.comm_bytes = bytes;
  n.deps = std::move(deps);
  return n;
}

TEST(EventSim, SerialChainSumsDurations) {
  SimGraph g;
  g.num_devices = 1;
  g.resident_bytes = {0.0};
  std::int32_t a = g.Add(Compute(0, 1.0));
  std::int32_t b = g.Add(Compute(0, 2.0, {a}));
  g.Add(Compute(0, 3.0, {b}));
  SimResult r = RunSim(g, K80Cluster());
  EXPECT_DOUBLE_EQ(r.makespan_s, 6.0);
  EXPECT_DOUBLE_EQ(r.compute_busy_s, 6.0);
}

TEST(EventSim, IndependentDevicesRunInParallel) {
  SimGraph g;
  g.num_devices = 2;
  g.resident_bytes = {0.0, 0.0};
  g.Add(Compute(0, 2.0));
  g.Add(Compute(1, 2.0));
  SimResult r = RunSim(g, K80Cluster());
  EXPECT_DOUBLE_EQ(r.makespan_s, 2.0);
}

TEST(EventSim, ComputeStreamSerializesSameDevice) {
  SimGraph g;
  g.num_devices = 1;
  g.resident_bytes = {0.0};
  g.Add(Compute(0, 1.0));
  g.Add(Compute(0, 1.0));  // independent, same device -> serialized
  SimResult r = RunSim(g, K80Cluster());
  EXPECT_DOUBLE_EQ(r.makespan_s, 2.0);
}

TEST(EventSim, CommOverlapsCompute) {
  ClusterSpec cluster = K80Cluster();
  SimGraph g;
  g.num_devices = 1;
  g.resident_bytes = {0.0};
  g.Add(Compute(0, 1.0));
  g.Add(P2P(0, cluster.p2p_bandwidth));  // exactly ~1 second of transfer
  SimResult r = RunSim(g, cluster);
  EXPECT_LT(r.makespan_s, 1.5);  // overlapped, not 2.0
  EXPECT_GT(r.comm_busy_s, 0.9);
}

TEST(EventSim, ZeroCommOptionDropsTransfers) {
  ClusterSpec cluster = K80Cluster();
  SimGraph g;
  g.num_devices = 1;
  g.resident_bytes = {0.0};
  std::int32_t x = g.Add(P2P(0, 10 * cluster.p2p_bandwidth));
  g.Add(Compute(0, 1.0, {x}));
  SimOptions zero;
  zero.zero_comm = true;
  EXPECT_DOUBLE_EQ(RunSim(g, cluster, zero).makespan_s, 1.0);
  EXPECT_GT(RunSim(g, cluster).makespan_s, 10.0);
}

TEST(EventSim, HostLinkIsShared) {
  ClusterSpec cluster = K80Cluster();
  SimGraph g;
  g.num_devices = 2;
  g.resident_bytes = {0.0, 0.0};
  SimNode h1;
  h1.kind = SimNode::Kind::kHost;
  h1.device = 0;
  h1.comm_bytes = cluster.cpu_bandwidth;  // 1 second
  g.Add(h1);
  SimNode h2 = h1;
  h2.device = 1;
  g.Add(h2);  // shares the single host link -> serialized
  SimResult r = RunSim(g, cluster);
  EXPECT_GT(r.makespan_s, 1.9);
}

TEST(EventSim, OutputBufferFreedAfterLastConsumer) {
  ClusterSpec cluster = K80Cluster();
  const std::int64_t big = static_cast<std::int64_t>(cluster.gpu.mem_capacity * 0.6);
  SimGraph g;
  g.num_devices = 1;
  g.resident_bytes = {0.0};
  std::int32_t a = g.Add(Compute(0, 1.0, {}, big));
  std::int32_t b = g.Add(Compute(0, 1.0, {a}, big));
  // `a` frees once `b` (its only consumer) finishes, so the two buffers coexist: peak 2x.
  SimResult r = RunSim(g, cluster);
  EXPECT_TRUE(r.oom);
  EXPECT_NEAR(r.max_peak_bytes, 2.0 * static_cast<double>(big), 1.0);
  // A third node reusing nothing keeps the peak at 2x, not 3x.
  std::int32_t c = g.Add(Compute(0, 1.0, {b}, big));
  (void)c;
  SimResult r2 = RunSim(g, cluster);
  EXPECT_NEAR(r2.max_peak_bytes, 2.0 * static_cast<double>(big), 1.0);
}

TEST(EventSim, TransientBytesReleaseImmediately) {
  ClusterSpec cluster = K80Cluster();
  SimGraph g;
  g.num_devices = 1;
  g.resident_bytes = {0.0};
  SimNode n = Compute(0, 1.0);
  n.transient_bytes = 1000;
  std::int32_t a = g.Add(n);
  SimNode m = Compute(0, 1.0, {a});
  m.transient_bytes = 1000;
  g.Add(m);
  SimResult r = RunSim(g, cluster);
  EXPECT_NEAR(r.max_peak_bytes, 1000.0, 1.0);  // never both at once
}

TEST(EventSim, ResidentBytesCountTowardOom) {
  ClusterSpec cluster = K80Cluster();
  SimGraph g;
  g.num_devices = 1;
  g.resident_bytes = {cluster.gpu.mem_capacity * 1.5};
  g.Add(Compute(0, 1.0));
  SimResult r = RunSim(g, cluster);
  EXPECT_TRUE(r.oom);
  SimOptions unlimited;
  unlimited.unlimited_memory = true;
  EXPECT_FALSE(RunSim(g, cluster, unlimited).oom);
}

TEST(EventSim, DeterministicMakespan) {
  SimGraph g;
  g.num_devices = 4;
  g.resident_bytes.assign(4, 0.0);
  std::vector<std::int32_t> layer;
  for (int d = 0; d < 4; ++d) {
    layer.push_back(g.Add(Compute(d, 0.5 + 0.1 * d)));
  }
  for (int d = 0; d < 4; ++d) {
    g.Add(P2P(d, 1e9, layer));
  }
  SimResult a = RunSim(g, K80Cluster());
  SimResult b = RunSim(g, K80Cluster());
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.max_peak_bytes, b.max_peak_bytes);
}

TEST(EventSim, SamplesPerSecondDerivedFromMakespan) {
  SimGraph g;
  g.num_devices = 1;
  g.resident_bytes = {0.0};
  g.Add(Compute(0, 2.0));
  g.samples_per_iteration = 64;
  SimResult r = RunSim(g, K80Cluster());
  EXPECT_DOUBLE_EQ(r.samples_per_second, 32.0);
}

// ------------------------------------------------------- explicit link queueing

SimNode Link(int link, double bytes, std::vector<std::int32_t> deps = {},
             double post_delay_s = 0.0) {
  SimNode n;
  n.kind = SimNode::Kind::kLink;
  n.link = link;
  n.comm_bytes = bytes;
  n.deps = std::move(deps);
  n.post_delay_s = post_delay_s;
  return n;
}

SimGraph LinkGraph(std::vector<double> bandwidths) {
  SimGraph g;
  g.num_devices = 1;
  g.resident_bytes = {0.0};
  g.link_bandwidths = std::move(bandwidths);
  return g;
}

TEST(EventSim, TransfersSerializeOnASharedLink) {
  SimGraph g = LinkGraph({1e9});
  g.Add(Link(0, 1e9));
  g.Add(Link(0, 1e9));
  SimResult r = RunSim(g, K80Cluster());
  EXPECT_DOUBLE_EQ(r.makespan_s, 2.0);
  EXPECT_DOUBLE_EQ(r.comm_busy_s, 2.0);
}

TEST(EventSim, TransfersOnDistinctLinksRunInParallel) {
  SimGraph g = LinkGraph({1e9, 2e9});
  g.Add(Link(0, 1e9));  // 1.0 s
  g.Add(Link(1, 1e9));  // 0.5 s on the faster link
  SimResult r = RunSim(g, K80Cluster());
  EXPECT_DOUBLE_EQ(r.makespan_s, 1.0);
  EXPECT_DOUBLE_EQ(r.comm_busy_s, 1.5);
}

TEST(EventSim, PostDelayDefersSuccessorsButFreesTheLink) {
  SimGraph g = LinkGraph({1e9, 1e9});
  // Hop 1 transmits for 1 s, then 0.25 s of wire latency before hop 2 may start.
  std::int32_t a = g.Add(Link(0, 1e9, {}, 0.25));
  g.Add(Link(1, 1e9, {a}));
  SimResult r = RunSim(g, K80Cluster());
  EXPECT_DOUBLE_EQ(r.makespan_s, 2.25);
  // The link itself was only occupied for the transmission, not the delay.
  EXPECT_DOUBLE_EQ(r.comm_busy_s, 2.0);
  // A second transfer on link 0 can start at t=1.0, inside a's latency window.
  g.Add(Link(0, 1e9));
  EXPECT_DOUBLE_EQ(RunSim(g, K80Cluster()).makespan_s, 2.25);
}

TEST(EventSim, TrailingPostDelayExtendsTheMakespan) {
  SimGraph g = LinkGraph({1e9});
  g.Add(Link(0, 1e9, {}, 0.5));  // delivery, not transmission end, completes a transfer
  SimResult r = RunSim(g, K80Cluster());
  EXPECT_DOUBLE_EQ(r.makespan_s, 1.5);
}

TEST(EventSim, ZeroCommDropsLinkTransfersAndDelays) {
  SimGraph g = LinkGraph({1e9});
  std::int32_t a = g.Add(Link(0, 1e9, {}, 0.5));
  g.Add(Link(0, 1e9, {a}));
  SimOptions zero;
  zero.zero_comm = true;
  SimResult r = RunSim(g, K80Cluster(), zero);
  EXPECT_DOUBLE_EQ(r.makespan_s, 0.0);
  EXPECT_DOUBLE_EQ(r.comm_busy_s, 0.0);
}

}  // namespace
}  // namespace tofu
