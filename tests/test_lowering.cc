// Lowering tests (§6): per-worker node generation, the 1/k resident-state property, comm
// volume agreement with the analytic plan cost, and the memory effect of the §6
// optimizations (control dependencies, MultiFetch).
#include <gtest/gtest.h>

#include "tofu/core/experiment.h"
#include "tofu/models/mlp.h"
#include "tofu/partition/recursive.h"
#include "tofu/sim/lowering.h"

namespace tofu {
namespace {

ModelGraph Fixture() {
  MlpConfig config;
  config.layer_sizes = {1024, 1024, 512, 128};
  config.batch = 128;
  return BuildMlp(config);
}

TEST(Lowering, TrivialPlanProducesSingleDeviceGraph) {
  ModelGraph model = Fixture();
  PartitionPlan trivial;
  SimGraph sim = LowerPartitioned(model.graph, trivial, K80Cluster(), model.batch);
  EXPECT_EQ(sim.num_devices, 1);
  EXPECT_EQ(static_cast<int>(sim.nodes.size()), model.graph.num_ops());
  for (const SimNode& n : sim.nodes) {
    EXPECT_EQ(n.kind, SimNode::Kind::kCompute);
    EXPECT_EQ(n.device, 0);
  }
}

TEST(Lowering, PartitionedGraphSplitsResidentState) {
  ModelGraph model = Fixture();
  const int k = 8;
  PartitionPlan plan = RecursivePartition(model.graph, k);
  SimGraph sim = LowerPartitioned(model.graph, plan, K80Cluster(), model.batch);
  ASSERT_EQ(sim.num_devices, k);

  PartitionPlan trivial;
  SimGraph single = LowerPartitioned(model.graph, trivial, K80Cluster(), model.batch);
  // Per-worker resident state ~ 1/k of the single-device state (small replicated biases
  // allow a modest overshoot).
  EXPECT_LT(sim.resident_bytes[0], single.resident_bytes[0] / k * 1.5);
  for (int d = 1; d < k; ++d) {
    EXPECT_DOUBLE_EQ(sim.resident_bytes[static_cast<size_t>(d)], sim.resident_bytes[0]);
  }
}

TEST(Lowering, CommNodesCarryPlanVolume) {
  ModelGraph model = Fixture();
  const int k = 8;
  PartitionPlan plan = RecursivePartition(model.graph, k);
  SimGraph sim = LowerPartitioned(model.graph, plan, K80Cluster(), model.batch);
  double lowered_bytes = 0.0;
  for (const SimNode& n : sim.nodes) {
    if (n.kind != SimNode::Kind::kCompute) {
      lowered_bytes += n.comm_bytes;
    }
  }
  // Total lowered transfer volume matches the analytic plan cost (up to the tiny
  // fetches below the 1-byte emission threshold).
  EXPECT_NEAR(lowered_bytes, plan.total_comm_bytes,
              0.02 * std::max(1.0, plan.total_comm_bytes));
}

TEST(Lowering, EveryComputeOpAppearsPerWorker) {
  ModelGraph model = Fixture();
  const int k = 4;
  PartitionPlan plan = RecursivePartition(model.graph, k);
  SimGraph sim = LowerPartitioned(model.graph, plan, K80Cluster(), model.batch);
  std::vector<int> per_device(static_cast<size_t>(k), 0);
  for (const SimNode& n : sim.nodes) {
    if (n.kind == SimNode::Kind::kCompute) {
      ++per_device[static_cast<size_t>(n.device)];
    }
  }
  for (int d = 0; d < k; ++d) {
    EXPECT_EQ(per_device[static_cast<size_t>(d)], model.graph.num_ops());
  }
}

TEST(Lowering, ControlDepsReduceOrKeepPeakMemory) {
  ModelGraph model = Fixture();
  PartitionPlan plan = RecursivePartition(model.graph, 4);
  LowerOptions with;
  LowerOptions without;
  without.add_control_deps = false;
  ClusterSpec cluster = K80Cluster();
  SimResult with_r =
      RunSim(LowerPartitioned(model.graph, plan, cluster, model.batch, with), cluster);
  SimResult without_r =
      RunSim(LowerPartitioned(model.graph, plan, cluster, model.batch, without), cluster);
  EXPECT_LE(with_r.max_peak_bytes, without_r.max_peak_bytes * 1.001);
}

TEST(Lowering, NaiveFetchPathAddsNodesAndMemory) {
  ModelGraph model = Fixture();
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  ClusterSpec cluster = K80Cluster();
  LowerOptions fused;
  LowerOptions naive;
  naive.multifetch = false;
  SimGraph fused_g = LowerPartitioned(model.graph, plan, cluster, model.batch, fused);
  SimGraph naive_g = LowerPartitioned(model.graph, plan, cluster, model.batch, naive);
  EXPECT_GT(naive_g.nodes.size(), fused_g.nodes.size());
  SimResult fused_r = RunSim(fused_g, cluster);
  SimResult naive_r = RunSim(naive_g, cluster);
  EXPECT_GE(naive_r.max_peak_bytes, fused_r.max_peak_bytes * 0.999);
  EXPECT_GE(naive_r.makespan_s, fused_r.makespan_s * 0.999);
}

TEST(Lowering, PlacementAssignsLayersAcrossDevices) {
  RnnConfig config;
  config.layers = 4;
  config.hidden = 256;
  config.batch = 32;
  config.timesteps = 6;
  ModelGraph model = BuildRnn(config);
  ClusterSpec cluster = K80Cluster();
  auto device_of = RoundRobinPlacement(model.graph, 4, RnnLayerOf);
  SimGraph sim = LowerPlacement(model.graph, 4, device_of, cluster, model.batch);
  std::vector<bool> used(4, false);
  double xfer_bytes = 0.0;
  for (const SimNode& n : sim.nodes) {
    used[static_cast<size_t>(n.device)] = true;
    if (n.kind == SimNode::Kind::kP2P) {
      xfer_bytes += n.comm_bytes;
    }
  }
  for (int d = 0; d < 4; ++d) {
    EXPECT_TRUE(used[static_cast<size_t>(d)]) << "device " << d << " unused";
  }
  EXPECT_GT(xfer_bytes, 0.0);  // cross-layer activations move between devices
}

TEST(Lowering, TfModeInflatesGradAggMemoryAndTime) {
  // Shared-weight model so gradient aggregation exists.
  RnnConfig config;
  config.layers = 2;
  config.hidden = 512;
  config.batch = 32;
  config.timesteps = 8;
  ModelGraph model = BuildRnn(config);
  ClusterSpec cluster = K80Cluster();
  auto device_of = RoundRobinPlacement(model.graph, 2, RnnLayerOf);
  LowerOptions mx;
  LowerOptions tf;
  tf.inplace_grad_agg = false;
  SimResult mx_r =
      RunSim(LowerPlacement(model.graph, 2, device_of, cluster, model.batch, mx), cluster);
  SimResult tf_r =
      RunSim(LowerPlacement(model.graph, 2, device_of, cluster, model.batch, tf), cluster);
  EXPECT_GT(tf_r.max_peak_bytes, mx_r.max_peak_bytes);
  EXPECT_GT(tf_r.makespan_s, mx_r.makespan_s);
}

}  // namespace
}  // namespace tofu
