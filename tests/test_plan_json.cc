// Plan serialization tests: every PartitionPlan field survives the JSON round trip, a
// reloaded plan replays through the simulator with identical totals, malformed or
// mismatched documents are rejected with recoverable Statuses, and ValidatePlanForGraph
// rejects plans that do not fit the graph they are applied to.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "tofu/core/session.h"
#include "tofu/models/mlp.h"
#include "tofu/partition/plan_io.h"
#include "tofu/pipeline/compose.h"
#include "tofu/pipeline/pipeline_plan.h"
#include "tofu/sim/runtimes.h"

namespace tofu {
namespace {

ModelGraph SmallModel() {
  MlpConfig config;
  config.layer_sizes = {256, 256, 64};
  config.batch = 32;
  return BuildMlp(config);
}

PartitionPlan PlanFor(const ModelGraph& model, int workers) {
  Session session(DeviceTopology::FromCluster(K80Cluster()));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> response = session.Partition(request);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->plan.num_workers, workers);
  return response->plan;
}

TEST(PlanJson, RoundTripsEveryField) {
  ModelGraph model = SmallModel();
  PartitionPlan plan = PlanFor(model, 8);
  plan.search_stats.wall_seconds = 0.015625;  // representable, so EQ is exact
  plan.memory_budget_bytes = 123456789;       // exercise the v2 memory fields
  plan.memory_feasible = false;
  plan.search_stats.memory_pruned_states = 42;

  Result<PartitionPlan> reloaded = PlanFromJson(PlanToJson(plan));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  EXPECT_EQ(reloaded->num_workers, plan.num_workers);
  EXPECT_EQ(reloaded->step_factors, plan.step_factors);
  EXPECT_EQ(reloaded->total_comm_bytes, plan.total_comm_bytes);
  EXPECT_EQ(reloaded->weighted_step_costs, plan.weighted_step_costs);
  EXPECT_EQ(reloaded->step_seconds, plan.step_seconds);
  EXPECT_EQ(reloaded->estimated_comm_seconds, plan.estimated_comm_seconds);
  EXPECT_EQ(reloaded->search_stats.states_explored, plan.search_stats.states_explored);
  EXPECT_EQ(reloaded->search_stats.max_frontier_states,
            plan.search_stats.max_frontier_states);
  EXPECT_EQ(reloaded->search_stats.cost_table_entries,
            plan.search_stats.cost_table_entries);
  EXPECT_EQ(reloaded->search_stats.wall_seconds, plan.search_stats.wall_seconds);
  EXPECT_EQ(reloaded->search_stats.exact, plan.search_stats.exact);
  EXPECT_EQ(reloaded->search_stats.memory_pruned_states,
            plan.search_stats.memory_pruned_states);
  EXPECT_EQ(reloaded->memory_budget_bytes, plan.memory_budget_bytes);
  EXPECT_EQ(reloaded->memory_feasible, plan.memory_feasible);
  ASSERT_EQ(reloaded->steps.size(), plan.steps.size());
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    EXPECT_EQ(reloaded->steps[i].ways, plan.steps[i].ways);
    EXPECT_EQ(reloaded->steps[i].comm_bytes, plan.steps[i].comm_bytes);
    EXPECT_EQ(reloaded->steps[i].comm_seconds, plan.steps[i].comm_seconds);
    EXPECT_EQ(reloaded->steps[i].peak_shard_bytes, plan.steps[i].peak_shard_bytes);
    EXPECT_GT(plan.steps[i].peak_shard_bytes, 0.0);
    EXPECT_EQ(reloaded->steps[i].tensor_cut, plan.steps[i].tensor_cut);
    EXPECT_EQ(reloaded->steps[i].op_strategy, plan.steps[i].op_strategy);
  }
  // The serialized forms agree byte-for-byte, so plans can be compared as strings.
  EXPECT_EQ(PlanToJson(*reloaded), PlanToJson(plan));
}

TEST(PlanJson, ReloadedPlanReplaysIdentically) {
  ModelGraph model = SmallModel();
  PartitionPlan plan = PlanFor(model, 8);
  Result<PartitionPlan> reloaded = PlanFromJson(PlanToJson(plan));
  ASSERT_TRUE(reloaded.ok());
  ASSERT_TRUE(ValidatePlanForGraph(model.graph, *reloaded).ok());

  const ClusterSpec cluster = K80Cluster();
  ThroughputResult original = RunPlanThroughput(model, plan, cluster);
  ThroughputResult replay = RunPlanThroughput(model, *reloaded, cluster);
  EXPECT_EQ(reloaded->total_comm_bytes, plan.total_comm_bytes);
  EXPECT_EQ(replay.iter_seconds, original.iter_seconds);
  EXPECT_EQ(replay.samples_per_second, original.samples_per_second);
  EXPECT_EQ(replay.peak_bytes, original.peak_bytes);
}

TEST(PlanJson, LegacyV1DocumentsStillLoadAsUnconstrained) {
  // A plan saved before the schema bump: no memory fields anywhere. It must load with
  // the memory fields at their unconstrained defaults, not be rejected.
  ModelGraph model = SmallModel();
  PartitionPlan plan = PlanFor(model, 8);
  std::string v1 = PlanToJson(plan);
  const std::string v2_tag = "tofu.plan.v2";
  ASSERT_NE(v1.find(v2_tag), std::string::npos);
  v1.replace(v1.find(v2_tag), v2_tag.size(), "tofu.plan.v1");

  Result<PartitionPlan> reloaded = PlanFromJson(v1);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->memory_budget_bytes, 0);
  EXPECT_TRUE(reloaded->memory_feasible);
  EXPECT_EQ(reloaded->search_stats.memory_pruned_states, 0);
  // v1 readers tolerate the extra keys; v1 carried no per-step peaks, so they default.
  EXPECT_EQ(reloaded->total_comm_bytes, plan.total_comm_bytes);
  EXPECT_TRUE(ValidatePlanForGraph(model.graph, *reloaded).ok());
}

// A graph whose split capacities run out at 32 workers plus a budget the pure search
// cannot meet: the hybrid search must answer with a real multi-stage pipeline plan
// (tests/test_pipeline.cc pins the stage goldens; here we only need pipeline != null).
PartitionPlan HybridPlan(const ModelGraph& model) {
  PartitionOptions options;
  options.memory_budget_bytes = 150;
  PartitionPlan plan = HybridPartition(model.graph, 32, options);
  EXPECT_NE(plan.pipeline, nullptr);
  return plan;
}

ModelGraph NarrowModel() {
  MlpConfig config;
  config.layer_sizes = {4, 4, 4, 4, 4, 4, 4, 4};
  config.batch = 8;
  return BuildMlp(config);
}

TEST(PlanJson, HybridPlansRoundTripUnderTheV3Schema) {
  ModelGraph model = SmallModel();
  // Pure plans keep the v2 tag byte-for-byte -- the schema bump must not disturb any
  // pre-pipeline digest.
  EXPECT_NE(PlanToJson(PlanFor(model, 8)).find("tofu.plan.v2"), std::string::npos);

  ModelGraph narrow = NarrowModel();
  PartitionPlan plan = HybridPlan(narrow);
  const std::string json = PlanToJson(plan);
  EXPECT_NE(json.find("tofu.plan.v3"), std::string::npos);

  Result<PartitionPlan> reloaded = PlanFromJson(json);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_NE(reloaded->pipeline, nullptr);
  const PipelinePlan& pipe = *plan.pipeline;
  const PipelinePlan& back = *reloaded->pipeline;
  EXPECT_EQ(back.num_stages, pipe.num_stages);
  EXPECT_EQ(back.micro_batches, pipe.micro_batches);
  EXPECT_EQ(back.bottleneck_seconds, pipe.bottleneck_seconds);
  EXPECT_EQ(back.pipeline_seconds, pipe.pipeline_seconds);
  EXPECT_EQ(back.comm_seconds, pipe.comm_seconds);
  ASSERT_EQ(back.stages.size(), pipe.stages.size());
  for (size_t s = 0; s < pipe.stages.size(); ++s) {
    EXPECT_EQ(back.stages[s].first_group, pipe.stages[s].first_group);
    EXPECT_EQ(back.stages[s].last_group, pipe.stages[s].last_group);
    EXPECT_EQ(back.stages[s].num_workers, pipe.stages[s].num_workers);
    EXPECT_EQ(back.stages[s].first_worker, pipe.stages[s].first_worker);
    EXPECT_EQ(back.stages[s].fwd_seconds, pipe.stages[s].fwd_seconds);
    EXPECT_EQ(back.stages[s].bwd_seconds, pipe.stages[s].bwd_seconds);
    EXPECT_EQ(back.stages[s].activation_bytes, pipe.stages[s].activation_bytes);
    EXPECT_EQ(back.stages[s].peak_bytes, pipe.stages[s].peak_bytes);
    EXPECT_EQ(back.stages[s].all_resident_bytes, pipe.stages[s].all_resident_bytes);
    EXPECT_EQ(PlanToJson(back.stages[s].plan), PlanToJson(pipe.stages[s].plan));
  }
  // Byte-identical re-serialization, valid against the graph, stable digest.
  EXPECT_EQ(PlanToJson(*reloaded), json);
  EXPECT_TRUE(ValidatePlanForGraph(narrow.graph, *reloaded).ok());
  EXPECT_EQ(PlanDigest(*reloaded), PlanDigest(plan));
}

TEST(PlanJson, RejectsNestedPipelineSections) {
  // Stage inner plans must be pure: retag every nested v2 object as v3 and the parser
  // must refuse (a v3 stage would claim a pipeline inside a pipeline).
  ModelGraph narrow = NarrowModel();
  std::string json = PlanToJson(HybridPlan(narrow));
  const std::string v2_tag = "tofu.plan.v2";
  size_t at = json.find(v2_tag);
  ASSERT_NE(at, std::string::npos);  // the stage plans carry v2 tags
  while (at != std::string::npos) {
    json.replace(at, v2_tag.size(), "tofu.plan.v3");
    at = json.find(v2_tag, at);
  }
  Result<PartitionPlan> reloaded = PlanFromJson(json);
  ASSERT_FALSE(reloaded.ok());
  EXPECT_EQ(reloaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanValidate, RejectsHybridPlansWithBrokenStageCoverage) {
  ModelGraph narrow = NarrowModel();
  const PartitionPlan plan = HybridPlan(narrow);
  ASSERT_TRUE(ValidatePlanForGraph(narrow.graph, plan).ok());
  ASSERT_GE(plan.pipeline->num_stages, 2);

  // Worker ranges must tile [0, W) in order.
  {
    PipelinePlan broken = *plan.pipeline;
    broken.stages[1].first_worker += 1;
    PartitionPlan mutated = plan;
    mutated.pipeline = std::make_shared<const PipelinePlan>(broken);
    EXPECT_EQ(ValidatePlanForGraph(narrow.graph, mutated).code(),
              StatusCode::kInvalidArgument);
  }
  // Group ranges must tile the macro-group sequence.
  {
    PipelinePlan broken = *plan.pipeline;
    broken.stages[0].last_group += 1;
    PartitionPlan mutated = plan;
    mutated.pipeline = std::make_shared<const PipelinePlan>(broken);
    EXPECT_EQ(ValidatePlanForGraph(narrow.graph, mutated).code(),
              StatusCode::kInvalidArgument);
  }
  // Dropping a stage breaks the claimed stage count.
  {
    PipelinePlan broken = *plan.pipeline;
    broken.stages.pop_back();
    PartitionPlan mutated = plan;
    mutated.pipeline = std::make_shared<const PipelinePlan>(broken);
    EXPECT_EQ(ValidatePlanForGraph(narrow.graph, mutated).code(),
              StatusCode::kInvalidArgument);
  }
  // A hybrid plan owns no top-level steps; the stages do.
  {
    PartitionPlan mutated = plan;
    mutated.steps = plan.pipeline->stages[0].plan.steps;
    EXPECT_EQ(ValidatePlanForGraph(narrow.graph, mutated).code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(PlanJson, RejectsMalformedDocuments) {
  // Not JSON at all.
  EXPECT_EQ(PlanFromJson("not json").status().code(), StatusCode::kInvalidArgument);
  // Valid JSON, wrong shape.
  EXPECT_FALSE(PlanFromJson("[1, 2, 3]").ok());
  EXPECT_FALSE(PlanFromJson("{}").ok());
  // Wrong schema tag.
  EXPECT_FALSE(PlanFromJson(R"({"schema": "tofu.plan.v999"})").ok());
}

TEST(PlanJson, RejectsInconsistentSteps) {
  ModelGraph model = SmallModel();
  PartitionPlan plan = PlanFor(model, 8);

  PartitionPlan dropped = plan;
  dropped.steps.pop_back();  // steps vs step_factors mismatch
  EXPECT_FALSE(PlanFromJson(PlanToJson(dropped)).ok());

  PartitionPlan skewed = plan;
  skewed.steps[0].ways = 3;  // ways vs step_factors mismatch
  EXPECT_FALSE(PlanFromJson(PlanToJson(skewed)).ok());
}

TEST(PlanValidate, RejectsPlansForOtherGraphs) {
  ModelGraph model = SmallModel();
  PartitionPlan plan = PlanFor(model, 8);
  EXPECT_TRUE(ValidatePlanForGraph(model.graph, plan).ok());

  // A different graph: tensor/op counts no longer line up.
  MlpConfig other_config;
  other_config.layer_sizes = {128, 64};
  other_config.batch = 16;
  ModelGraph other = BuildMlp(other_config);
  EXPECT_EQ(ValidatePlanForGraph(other.graph, plan).code(),
            StatusCode::kInvalidArgument);

  // A cut along a dimension the tensor does not have.
  PartitionPlan corrupt = plan;
  corrupt.steps[0].tensor_cut[0] = 99;
  EXPECT_EQ(ValidatePlanForGraph(model.graph, corrupt).code(),
            StatusCode::kInvalidArgument);

  // A strategy index past the op's discovered strategy list (would index out of bounds
  // when lowering).
  PartitionPlan bad_strategy = plan;
  bad_strategy.steps[0].op_strategy[0] = 999;
  EXPECT_EQ(ValidatePlanForGraph(model.graph, bad_strategy).code(),
            StatusCode::kInvalidArgument);

  // Step factors that do not multiply to the worker count.
  PartitionPlan wrong_product = plan;
  wrong_product.num_workers = 16;
  EXPECT_FALSE(ValidatePlanForGraph(model.graph, wrong_product).ok());

  // Crafted factor lists whose product would overflow are rejected early (no UB).
  PartitionPlan huge = plan;
  huge.step_factors.assign(4, 1 << 30);
  EXPECT_EQ(ValidatePlanForGraph(model.graph, huge).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace tofu
