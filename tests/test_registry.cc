// Registry-wide coverage: every registered operator must yield a well-formed description,
// a consistent shape function, discoverable strategies, and a sane compute class. This is
// the automated analogue of the paper's "TDL can describe 134 of 139 MXNet operators"
// audit for our operator set.
#include <gtest/gtest.h>

#include "tofu/tdl/registry.h"

namespace tofu {
namespace {

// Representative instantiation (attrs, input shapes) per op type so the whole registry
// can be exercised generically.
struct OpCase {
  std::string name;
  OpAttrs attrs;
  std::vector<Shape> inputs;
};

std::vector<OpCase> AllCases() {
  std::vector<OpCase> cases;
  const Shape t2{32, 64};
  const Shape t4{8, 16, 28, 28};
  auto ew = [&](const std::string& name, int arity, Shape shape) {
    OpCase c{name, {}, {}};
    for (int i = 0; i < arity; ++i) {
      c.inputs.push_back(shape);
    }
    cases.push_back(c);
  };
  for (const char* name : {"add", "sub", "mul", "div", "maximum", "relu_grad", "tanh_grad",
                           "sigmoid_grad", "sgd_update", "adagrad_hist"}) {
    ew(name, 2, t2);
  }
  for (const char* name : {"copy", "neg", "relu", "tanh", "sigmoid", "exp", "log", "sqrt",
                           "square", "scale", "add_scalar"}) {
    ew(name, 1, t4);
  }
  ew("fma2", 4, t2);
  ew("adagrad_update", 3, t2);

  cases.push_back({"matmul", {}, {{32, 64}, {64, 128}}});
  cases.push_back({"matmul_tn", {}, {{64, 32}, {64, 128}}});
  cases.push_back({"matmul_nt", {}, {{32, 64}, {128, 64}}});
  cases.push_back({"transpose2d", {}, {{32, 64}}});
  cases.push_back({"reduce_rows", {}, {{32, 64}}});
  cases.push_back({"reduce_mean_all", {}, {{32}}});
  cases.push_back({"broadcast_rows", OpAttrs().Set("rows", 32), {{64}}});
  cases.push_back({"broadcast_scalar", OpAttrs().Set("n", 32), {{}}});
  cases.push_back({"scale_rows", {}, {{32, 64}, {32}}});
  cases.push_back({"conv1d", {}, {{8, 4, 32}, {4, 6, 3}}});
  cases.push_back({"shift_two", {}, {{16}}});
  cases.push_back({"batch_cholesky", {}, {{8, 16, 16}}});
  cases.push_back(
      {"conv2d", OpAttrs().Set("stride", 1).Set("pad", 1), {{8, 16, 28, 28}, {32, 16, 3, 3}}});
  cases.push_back({"conv2d_bwd_data",
                   OpAttrs().Set("stride", 1).Set("pad", 1).Set("h", 28).Set("w", 28),
                   {{8, 32, 28, 28}, {32, 16, 3, 3}}});
  cases.push_back({"conv2d_bwd_filter",
                   OpAttrs().Set("stride", 1).Set("pad", 1).Set("kh", 3).Set("kw", 3),
                   {{8, 32, 28, 28}, {8, 16, 28, 28}}});
  cases.push_back({"maxpool2d", OpAttrs().Set("kernel", 2).Set("stride", 2), {t4}});
  cases.push_back({"maxpool2d_grad", OpAttrs().Set("kernel", 2).Set("stride", 2),
                   {{8, 16, 14, 14}, t4, {8, 16, 14, 14}}});
  cases.push_back({"global_avg_pool", {}, {t4}});
  cases.push_back({"global_avg_pool_grad", OpAttrs().Set("h", 28).Set("w", 28), {{8, 16}}});
  cases.push_back({"bn", {}, {t4, {16}, {16}}});
  cases.push_back({"bn_grad_x", {}, {t4, {16}}});
  cases.push_back({"bn_grad_gamma", {}, {t4, t4}});
  cases.push_back({"reduce_channel", {}, {t4}});
  cases.push_back({"add_bias", OpAttrs().Set("bias_dim", 1), {t2, {64}}});
  cases.push_back({"softmax_xent", {}, {{32, 1000}, {32}}});
  cases.push_back({"softmax_xent_grad", {}, {{32, 1000}, {32}}});

  // Attention family (ops_attention.cc): batched matmuls, shared-weight projections,
  // row-coupled normalizations, sequence pooling.
  const Shape t3{8, 32, 64};
  cases.push_back({"batch_matmul", {}, {{8, 32, 64}, {8, 64, 16}}});
  cases.push_back({"batch_matmul_tn", {}, {{8, 64, 32}, {8, 64, 16}}});
  cases.push_back({"batch_matmul_nt", {}, {{8, 32, 64}, {8, 16, 64}}});
  cases.push_back({"linear3d", {}, {{8, 32, 64}, {64, 128}}});
  cases.push_back({"linear3d_nt", {}, {{8, 32, 128}, {64, 128}}});
  cases.push_back({"linear3d_grad_w", {}, {{8, 32, 64}, {8, 32, 128}}});
  cases.push_back({"softmax", {}, {t3}});
  cases.push_back({"softmax_grad", {}, {t3, t3}});
  cases.push_back({"layernorm", {}, {t3, {64}, {64}}});
  cases.push_back({"layernorm_grad_x", {}, {t3, t3, {64}}});
  cases.push_back({"layernorm_grad_gamma", {}, {t3, t3}});
  cases.push_back({"reduce_leading", {}, {t3}});
  cases.push_back({"mean_seq", {}, {t3}});
  cases.push_back({"mean_seq_grad", OpAttrs().Set("seq", 32), {{8, 64}}});
  return cases;
}

std::vector<int> Ranks(const std::vector<Shape>& shapes) {
  std::vector<int> ranks;
  for (const Shape& s : shapes) {
    ranks.push_back(static_cast<int>(s.size()));
  }
  return ranks;
}

class RegistryCase : public ::testing::TestWithParam<OpCase> {};

TEST_P(RegistryCase, DescriptionShapeAndStrategiesAreConsistent) {
  const OpCase& c = GetParam();
  OpRegistry& registry = OpRegistry::Get();
  ASSERT_TRUE(registry.Has(c.name));

  const Shape out = registry.InferShape(c.name, c.inputs, c.attrs);
  const OpSemantics& sem = registry.Semantics(c.name, c.attrs, Ranks(c.inputs));

  // Arity and ranks agree between the shape function and the description.
  EXPECT_EQ(sem.desc.num_inputs, static_cast<int>(c.inputs.size()));
  EXPECT_EQ(sem.desc.num_output_dims, static_cast<int>(out.size()));
  for (size_t i = 0; i < c.inputs.size(); ++i) {
    EXPECT_EQ(sem.desc.input_ranks[i], static_cast<int>(c.inputs[i].size()))
        << c.name << " input " << i;
  }

  // Every non-scalar-output op must have at least one partition strategy.
  if (!out.empty()) {
    EXPECT_FALSE(sem.strategies.empty()) << c.name;
  }

  // Strategies concretize without issue and reference valid dims.
  const std::vector<std::int64_t> extents = BindVarExtents(sem.desc, c.inputs, out);
  for (const BasicStrategy& s : sem.strategies) {
    const ConcreteStrategy concrete = Concretize(s, extents);
    EXPECT_GT(concrete.var_extent, 0) << c.name << " var " << s.var_name;
    ASSERT_EQ(concrete.inputs.size(), c.inputs.size());
    for (size_t i = 0; i < concrete.inputs.size(); ++i) {
      if (concrete.inputs[i].kind == InputReq::Kind::kSplit) {
        ASSERT_GE(concrete.inputs[i].dim, 0) << c.name;
        ASSERT_LT(concrete.inputs[i].dim, static_cast<int>(c.inputs[i].size())) << c.name;
        EXPECT_GE(concrete.inputs[i].halo_elems, 0) << c.name;
      }
    }
    if (!s.is_reduction) {
      ASSERT_GE(s.output_dim, 0) << c.name;
      ASSERT_LT(s.output_dim, static_cast<int>(out.size())) << c.name;
    }
  }

  // FLOPs are non-negative and zero exactly for bandwidth-class ops.
  const double flops = registry.Flops(c.name, c.inputs, out, c.attrs);
  EXPECT_GE(flops, 0.0);
  if (registry.Info(c.name).op_class == OpClass::kBandwidth) {
    EXPECT_EQ(flops, 0.0) << c.name;
  } else {
    EXPECT_GT(flops, 0.0) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, RegistryCase, ::testing::ValuesIn(AllCases()),
                         [](const ::testing::TestParamInfo<OpCase>& info) {
                           return info.param.name;
                         });

TEST(Registry, CaseListCoversEveryRegisteredOp) {
  std::vector<std::string> names = OpRegistry::Get().RegisteredNames();
  std::set<std::string> covered;
  for (const OpCase& c : AllCases()) {
    covered.insert(c.name);
  }
  for (const std::string& name : names) {
    EXPECT_TRUE(covered.count(name) > 0) << "op " << name << " missing from registry tests";
  }
}

// Naming conventions documented in docs/tdl.md: a gradient operator is `<fwd>_grad`,
// `<fwd>_grad_<operand>` or `<fwd>_bwd_<operand>`, and its forward operator must be
// registered too -- no orphan gradient ops. (Generic adjoints like reduce_rows /
// broadcast_rows pair through autodiff rules instead and carry no _grad suffix.)
TEST(Registry, EveryGradOpPairsWithARegisteredForwardOp) {
  OpRegistry& registry = OpRegistry::Get();
  for (const std::string& name : registry.RegisteredNames()) {
    for (const char* marker : {"_grad", "_bwd"}) {
      const size_t pos = name.find(marker);
      if (pos == std::string::npos) {
        continue;
      }
      const std::string forward = name.substr(0, pos);
      EXPECT_TRUE(registry.Has(forward))
          << "gradient op " << name << " has no registered forward op " << forward;
    }
  }
}

TEST(Registry, SemanticsAreCachedPerSignature) {
  OpRegistry& registry = OpRegistry::Get();
  const OpSemantics& a = registry.Semantics("matmul", {}, {2, 2});
  const OpSemantics& b = registry.Semantics("matmul", {}, {2, 2});
  EXPECT_EQ(&a, &b);
  // Different attrs -> different cache entry.
  const OpSemantics& c =
      registry.Semantics("conv2d", OpAttrs().Set("stride", 1).Set("pad", 1), {4, 4});
  const OpSemantics& d =
      registry.Semantics("conv2d", OpAttrs().Set("stride", 2).Set("pad", 1), {4, 4});
  EXPECT_NE(&c, &d);
}

}  // namespace
}  // namespace tofu
