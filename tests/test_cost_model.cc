// Cost-model tests: roofline behaviour, batch-dependent efficiency (the §7.2 mechanism
// behind SmallBatch's RNN collapse), transfer times, and monotonicity sweeps.
#include <gtest/gtest.h>

#include "tofu/sim/cost_model.h"

namespace tofu {
namespace {

TEST(CostModel, K80ClusterMatchesPaperTestbed) {
  ClusterSpec c = K80Cluster();
  EXPECT_EQ(c.num_gpus, 8);
  EXPECT_DOUBLE_EQ(c.p2p_bandwidth, 21e9);
  EXPECT_DOUBLE_EQ(c.cpu_bandwidth, 10e9);
  EXPECT_DOUBLE_EQ(c.gpu.mem_capacity, 12.0 * (1ull << 30));
}

TEST(CostModel, KernelTimeIncludesLaunchOverhead) {
  GpuSpec gpu;
  EXPECT_GE(KernelSeconds(gpu, OpClass::kBandwidth, 0, 0, 1), gpu.kernel_overhead_s);
}

TEST(CostModel, BandwidthBoundScalesWithBytes) {
  GpuSpec gpu;
  const double t1 = KernelSeconds(gpu, OpClass::kBandwidth, 0, 1e9, 1);
  const double t2 = KernelSeconds(gpu, OpClass::kBandwidth, 0, 2e9, 1);
  EXPECT_NEAR(t2 - gpu.kernel_overhead_s, 2.0 * (t1 - gpu.kernel_overhead_s), 1e-12);
}

TEST(CostModel, MatmulStarvesAtSmallBatch) {
  // §7.2: GEMM utilization collapses at small row counts while convolutions stay
  // efficient; this asymmetry is why SmallBatch competes on WResNet-50-4 but never on
  // the RNNs.
  GpuSpec gpu;
  const double flops = 1e12;
  const double gemm_small = KernelSeconds(gpu, OpClass::kMatmul, flops, 0, 8);
  const double gemm_big = KernelSeconds(gpu, OpClass::kMatmul, flops, 0, 512);
  EXPECT_GT(gemm_small, 4.0 * gemm_big);

  const double conv_small = KernelSeconds(gpu, OpClass::kConv, flops, 0, 8);
  const double conv_big = KernelSeconds(gpu, OpClass::kConv, flops, 0, 512);
  EXPECT_LT(conv_small, 1.5 * conv_big);
}

TEST(CostModel, TransferIncludesLatency) {
  ClusterSpec c = K80Cluster();
  EXPECT_NEAR(TransferSeconds(c, 0, c.p2p_bandwidth), c.link_latency_s, 1e-15);
  EXPECT_NEAR(TransferSeconds(c, c.p2p_bandwidth, c.p2p_bandwidth),
              c.link_latency_s + 1.0, 1e-12);
}

// Parameterized monotonicity: kernel time never decreases with more FLOPs, and never
// increases with more rows (better utilization).
class EfficiencyMonotone : public ::testing::TestWithParam<double> {};

TEST_P(EfficiencyMonotone, MoreRowsNeverSlower) {
  GpuSpec gpu;
  const double rows = GetParam();
  for (OpClass cls : {OpClass::kMatmul, OpClass::kConv}) {
    const double t = KernelSeconds(gpu, cls, 1e12, 0, rows);
    const double t2 = KernelSeconds(gpu, cls, 1e12, 0, rows * 2);
    EXPECT_LE(t2, t) << "rows=" << rows;
  }
}

TEST_P(EfficiencyMonotone, MoreFlopsNeverFaster) {
  GpuSpec gpu;
  const double rows = GetParam();
  for (OpClass cls : {OpClass::kMatmul, OpClass::kConv}) {
    const double t = KernelSeconds(gpu, cls, 1e12, 0, rows);
    const double t2 = KernelSeconds(gpu, cls, 2e12, 0, rows);
    EXPECT_GE(t2, t) << "rows=" << rows;
  }
}

INSTANTIATE_TEST_SUITE_P(Rows, EfficiencyMonotone,
                         ::testing::Values(1.0, 4.0, 16.0, 64.0, 256.0, 1024.0));

}  // namespace
}  // namespace tofu
