// Unified memory planner tests: liveness edge cases (in-place alias chains,
// zero-consumer outputs, resident model state), the repair pass's prefix-greedy
// schedule, the analytic-vs-simulated overhead bounds, budget-ladder monotonicity
// (tighter budget => equal-or-higher offload cost), the tofu.plan.v4 round trip, and
// the session-level end-to-end path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "tofu/core/session.h"
#include "tofu/memory/liveness.h"
#include "tofu/memory/repair.h"
#include "tofu/memory/schedule.h"
#include "tofu/memory/sim_replay.h"
#include "tofu/models/mlp.h"
#include "tofu/partition/plan_io.h"
#include "tofu/partition/recursive.h"

namespace tofu {
namespace {

ModelGraph MidMlp() {
  MlpConfig config;
  config.layer_sizes = {512, 512, 512, 256};
  config.batch = 64;
  return BuildMlp(config);
}

// x,w resident state; m = matmul(x,w); r = relu(m); acc = add(r,m) in-place on r.
// Every tensor is [8,8] fp32 = 256 bytes; one worker, so shards are full tensors.
struct TinyGraph {
  Graph graph;
  TensorId x, w, m, r, acc;
  OpId relu_op;
  PartitionPlan plan;  // trivial 1-worker plan

  TinyGraph() {
    x = graph.AddInput("x", {8, 8});
    w = graph.AddParam("w", {8, 8});
    m = graph.AddOp("matmul", {}, {x, w}, "m");
    r = graph.AddOp("relu", {}, {m}, "r");
    relu_op = graph.num_ops() - 1;
    acc = graph.AddOp("add", {}, {r, m}, "acc");
    graph.op(graph.num_ops() - 1).inplace_input = 0;  // acc reuses r's buffer
  }
};

TEST(Liveness, InPlaceAliasChainSharesOneBuffer) {
  TinyGraph t;
  const LivenessAnalysis liveness = AnalyzeLiveness(t.graph, t.plan);
  // acc's output extends r's buffer: the chain root is r, not a fresh allocation.
  EXPECT_EQ(liveness.buffer[static_cast<size_t>(t.acc)], t.r);
  EXPECT_TRUE(liveness.IsRoot(t.r));
  EXPECT_FALSE(liveness.IsRoot(t.acc));
  // The buffer is allocated where the chain root is produced (the relu).
  EXPECT_EQ(liveness.alloc_at[static_cast<size_t>(t.r)], t.relu_op);
}

TEST(Liveness, ZeroConsumerOutputLivesToTheEnd) {
  TinyGraph t;
  const LivenessAnalysis liveness = AnalyzeLiveness(t.graph, t.plan);
  // Nobody reads acc, so its buffer (rooted at r) is never freed.
  EXPECT_EQ(liveness.free_at[static_cast<size_t>(t.r)], liveness.num_ops);
  // m's last consumer is the in-place add; it is freed right after.
  EXPECT_LT(liveness.free_at[static_cast<size_t>(t.m)], liveness.num_ops);
}

TEST(Liveness, ModelStateStaysResident) {
  TinyGraph t;
  const LivenessAnalysis liveness = AnalyzeLiveness(t.graph, t.plan);
  EXPECT_TRUE(liveness.IsModelState(t.x));
  EXPECT_TRUE(liveness.IsModelState(t.w));
  EXPECT_FALSE(liveness.IsModelState(t.r));
  // Peak: at the relu, x + w + m + r are all live (the add keeps m alive and extends
  // r's buffer in place): 4 x 256 bytes. The alias does NOT add a fifth buffer.
  EXPECT_EQ(LivenessPeakShardBytes(t.graph, t.plan), 4 * 256);
  // The schedule-independent bound has no reuse credit and stays above the peak.
  EXPECT_GE(AllResidentShardBytes(t.graph, t.plan),
            LivenessPeakShardBytes(t.graph, t.plan));
}

TEST(Schedule, SwappedModelStateChargedOnlyAtTouchingOps) {
  TinyGraph t;
  MemorySchedule schedule;
  MemoryDecision d;
  d.tensor = t.w;
  d.residency = Residency::kSwap;
  d.bytes = 256.0;
  schedule.decisions.push_back(d);
  // With w offloaded it is only device-resident while the matmul reads it, so the
  // relu-time peak drops from x+w+m+r to x+m+r.
  EXPECT_EQ(ScheduledPeakShardBytes(t.graph, t.plan, schedule), 3 * 256);
  // An empty schedule reproduces the plain liveness sweep exactly.
  EXPECT_EQ(ScheduledPeakShardBytes(t.graph, t.plan, MemorySchedule{}),
            LivenessPeakShardBytes(t.graph, t.plan));
}

TEST(Repair, MakesInfeasibleBudgetFeasible) {
  ModelGraph model = MidMlp();
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  const std::int64_t baseline = LivenessPeakShardBytes(model.graph, plan);
  const std::int64_t floor = MinAchievablePeakBytes(model.graph, plan);
  ASSERT_LT(floor, baseline);
  const std::int64_t budget = floor + (baseline - floor) / 2;

  const RepairResult repair = BuildRepairSchedule(model.graph, plan, budget,
                                                 MemoryPolicy::kAuto, MemoryPricing{});
  ASSERT_TRUE(repair.feasible);
  ASSERT_NE(repair.schedule, nullptr);
  EXPECT_FALSE(repair.schedule->decisions.empty());
  EXPECT_EQ(repair.schedule->baseline_peak_bytes, baseline);
  EXPECT_LE(repair.schedule->scheduled_peak_bytes, budget);
  // The stored peak is exactly what re-evaluating the schedule yields.
  EXPECT_EQ(ScheduledPeakShardBytes(model.graph, plan, *repair.schedule),
            repair.schedule->scheduled_peak_bytes);
  // Decisions are sorted by tensor id and each carries a positive price.
  for (size_t i = 0; i < repair.schedule->decisions.size(); ++i) {
    const MemoryDecision& decision = repair.schedule->decisions[i];
    EXPECT_NE(decision.residency, Residency::kResident);
    EXPECT_GT(decision.bytes, 0.0);
    EXPECT_GT(decision.overhead_seconds, 0.0);
    if (i > 0) {
      EXPECT_LT(repair.schedule->decisions[i - 1].tensor, decision.tensor);
    }
  }
}

TEST(Repair, BudgetBelowFloorStaysInfeasibleAndReportsTheFloor) {
  ModelGraph model = MidMlp();
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  const std::int64_t floor = MinAchievablePeakBytes(model.graph, plan);
  const RepairResult repair = BuildRepairSchedule(model.graph, plan, floor - 1,
                                                 MemoryPolicy::kAuto, MemoryPricing{});
  EXPECT_FALSE(repair.feasible);
  EXPECT_EQ(repair.min_achievable_peak_bytes, floor);
  // kNone never repairs, even when a schedule could fit.
  const RepairResult none = BuildRepairSchedule(
      model.graph, plan, LivenessPeakShardBytes(model.graph, plan) - 1,
      MemoryPolicy::kNone, MemoryPricing{});
  EXPECT_FALSE(none.feasible);
}

TEST(Repair, AnalyticVsSimulatedWithinTwoX) {
  ModelGraph model = MidMlp();
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  const std::int64_t baseline = LivenessPeakShardBytes(model.graph, plan);
  const std::int64_t floor = MinAchievablePeakBytes(model.graph, plan);
  const MemoryPricing pricing;
  for (MemoryPolicy policy : {MemoryPolicy::kAuto, MemoryPolicy::kSwapOnly,
                              MemoryPolicy::kRecomputeOnly}) {
    const RepairResult repair = BuildRepairSchedule(
        model.graph, plan, floor + (baseline - floor) / 2, policy, pricing);
    if (!repair.feasible) {
      continue;  // a restricted policy may not reach the budget; kAuto must
    }
    const double analytic = repair.schedule->AnalyticOverheadSeconds();
    const double simulated =
        SimulateScheduleSeconds(model.graph, plan, *repair.schedule, pricing);
    ASSERT_GT(analytic, 0.0) << MemoryPolicyName(policy);
    EXPECT_GE(simulated, analytic * (1.0 - 1e-9)) << MemoryPolicyName(policy);
    EXPECT_LE(simulated, 2.0 * analytic * (1.0 + 1e-9)) << MemoryPolicyName(policy);
  }
}

TEST(Repair, BudgetLadderIsMonotone) {
  ModelGraph model = MidMlp();
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  const std::int64_t baseline = LivenessPeakShardBytes(model.graph, plan);
  const std::int64_t floor = MinAchievablePeakBytes(model.graph, plan);
  double previous_overhead = -1.0;
  size_t previous_decisions = 0;
  // Descend from just-infeasible to the floor: each tighter budget must mark a
  // superset of the looser budget's decisions (prefix of one sorted candidate list),
  // so overhead and decision count never decrease.
  for (int i = 0; i <= 8; ++i) {
    const std::int64_t budget = baseline - 1 - ((baseline - 1 - floor) * i) / 8;
    const RepairResult repair = BuildRepairSchedule(model.graph, plan, budget,
                                                   MemoryPolicy::kAuto, MemoryPricing{});
    ASSERT_TRUE(repair.feasible) << "budget " << budget;
    const double overhead =
        repair.schedule->swap_seconds + repair.schedule->recompute_seconds;
    EXPECT_GE(overhead, previous_overhead) << "budget " << budget;
    EXPECT_GE(repair.schedule->decisions.size(), previous_decisions);
    previous_overhead = overhead;
    previous_decisions = repair.schedule->decisions.size();
  }
}

TEST(PlanIo, ScheduleRoundTripsThroughV4) {
  ModelGraph model = MidMlp();
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  const std::int64_t baseline = LivenessPeakShardBytes(model.graph, plan);
  const RepairResult repair = BuildRepairSchedule(
      model.graph, plan, MinAchievablePeakBytes(model.graph, plan) + 1,
      MemoryPolicy::kAuto, MemoryPricing{});
  ASSERT_TRUE(repair.feasible);
  plan.memory_schedule = repair.schedule;
  plan.memory_budget_bytes = repair.schedule->budget_bytes;
  ASSERT_LT(repair.schedule->scheduled_peak_bytes, baseline);

  const std::string json = PlanToJson(plan);
  EXPECT_NE(json.find(kPlanJsonSchemaV4), std::string::npos);
  Result<PartitionPlan> loaded = PlanFromJson(json);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(ValidatePlanForGraph(model.graph, *loaded).ok());
  ASSERT_NE(loaded->memory_schedule, nullptr);
  const MemorySchedule& a = *plan.memory_schedule;
  const MemorySchedule& b = *loaded->memory_schedule;
  EXPECT_EQ(a.budget_bytes, b.budget_bytes);
  EXPECT_EQ(a.baseline_peak_bytes, b.baseline_peak_bytes);
  EXPECT_EQ(a.scheduled_peak_bytes, b.scheduled_peak_bytes);
  EXPECT_EQ(a.swap_bytes, b.swap_bytes);            // %.17g: bit-identical doubles
  EXPECT_EQ(a.swap_seconds, b.swap_seconds);
  EXPECT_EQ(a.recompute_seconds, b.recompute_seconds);
  EXPECT_EQ(a.host_bandwidth, b.host_bandwidth);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].tensor, b.decisions[i].tensor);
    EXPECT_EQ(a.decisions[i].residency, b.decisions[i].residency);
    EXPECT_EQ(a.decisions[i].bytes, b.decisions[i].bytes);
    EXPECT_EQ(a.decisions[i].overhead_seconds, b.decisions[i].overhead_seconds);
  }
  // And the reloaded plan re-serializes byte-identically.
  EXPECT_EQ(PlanToJson(*loaded), json);
}

TEST(PlanIo, ScheduleFreePlansKeepTheirOldSchema) {
  ModelGraph model = MidMlp();
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  const std::string json = PlanToJson(plan);
  EXPECT_NE(json.find(kPlanJsonSchema), std::string::npos);
  EXPECT_EQ(json.find("memory_schedule"), std::string::npos);
}

TEST(Session, RepairedBudgetReturnsScheduleWithBoundedOverhead) {
  ModelGraph model = MidMlp();
  Session session(DeviceTopology::FromCluster(K80Cluster()));
  PartitionRequest request;
  request.graph = &model.graph;

  Result<PartitionResponse> unconstrained = session.Partition(request);
  ASSERT_TRUE(unconstrained.ok());
  ASSERT_EQ(unconstrained->plan.memory_schedule, nullptr);
  const std::int64_t floor =
      MinAchievablePeakBytes(model.graph, unconstrained->plan);

  PartitionRequest tight = request;
  tight.memory_budget_bytes = floor + (unconstrained->peak_shard_bytes - floor) / 2;
  Result<PartitionResponse> repaired = session.Partition(tight);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  ASSERT_NE(repaired->plan.memory_schedule, nullptr);
  EXPECT_LE(repaired->peak_shard_bytes, tight.memory_budget_bytes);
  EXPECT_TRUE(repaired->plan.memory_feasible);
  const double analytic = repaired->memory_overhead_seconds;
  const double simulated = repaired->simulated_memory_seconds;
  ASSERT_GT(analytic, 0.0);
  EXPECT_GE(simulated, analytic * (1.0 - 1e-9));
  EXPECT_LE(simulated, 2.0 * analytic * (1.0 + 1e-9));

  // The same budget under kNone restores the pre-repair refusal, and the message
  // quotes the floor no schedule can beat.
  PartitionRequest no_repair = tight;
  no_repair.options.memory_policy = MemoryPolicy::kNone;
  Result<PartitionResponse> refused = session.Partition(no_repair);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.status().message().find("minimum achievable peak"),
            std::string::npos)
      << refused.status().ToString();
}

TEST(Session, MemoryFrontierIsMonotone) {
  ModelGraph model = MidMlp();
  Session session(DeviceTopology::FromCluster(K80Cluster()));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> unconstrained = session.Partition(request);
  ASSERT_TRUE(unconstrained.ok());
  const std::int64_t peak = unconstrained->peak_shard_bytes;
  const std::int64_t floor =
      MinAchievablePeakBytes(model.graph, unconstrained->plan);

  // Budgets from roomy to below the floor: the all-resident regime, the repair
  // regime, and one genuinely infeasible row.
  std::vector<std::int64_t> budgets;
  for (int i = 0; i <= 4; ++i) {
    budgets.push_back(peak + 1 - ((peak + 1 - floor) * i) / 4);
  }
  budgets.push_back(floor / 2);
  Result<std::vector<FrontierPoint>> frontier =
      session.MemoryFrontier(request, budgets);
  ASSERT_TRUE(frontier.ok()) << frontier.status().ToString();
  ASSERT_EQ(frontier->size(), budgets.size());
  EXPECT_TRUE(frontier->front().feasible);
  EXPECT_EQ(frontier->front().memory_overhead_seconds, 0.0);
  EXPECT_FALSE(frontier->back().feasible);
  double previous_overhead = -1.0;
  for (size_t i = 0; i + 1 < frontier->size(); ++i) {
    const FrontierPoint& point = (*frontier)[i];
    ASSERT_TRUE(point.feasible) << "budget " << point.budget_bytes;
    EXPECT_LE(point.peak_shard_bytes, point.budget_bytes);
    // Tighter budget => equal-or-higher offload cost (prefix-greedy supersets).
    EXPECT_GE(point.memory_overhead_seconds, previous_overhead);
    previous_overhead = point.memory_overhead_seconds;
  }
}

}  // namespace
}  // namespace tofu
