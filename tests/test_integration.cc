// End-to-end integration sweeps: the full pipeline (build -> validate -> autodiff ->
// coarsen -> recursive partition -> lower -> simulate) over model families x worker
// counts, asserting the invariants a correct run must satisfy everywhere:
//   * the plan's analytic communication equals the lowered graph's transfer volume;
//   * per-worker resident state is ~1/k of the single-device state;
//   * the simulated iteration is never faster than its zero-communication bound;
//   * all workers perform the same amount of compute (balanced partitions).
#include <gtest/gtest.h>

#include "tofu/core/experiment.h"
#include "tofu/core/partitioner.h"
#include "tofu/models/mlp.h"
#include "tofu/util/strings.h"

namespace tofu {
namespace {

struct SweepCase {
  std::string name;
  int family;  // 0 = MLP-ish RNN small, 1 = WResNet, 2 = RNN
  int workers;
};

ModelGraph BuildCase(const SweepCase& c) {
  if (c.family == 1) {
    WResNetConfig config;
    config.layers = 50;
    config.width = 4;
    config.batch = 32;
    return BuildWResNet(config);
  }
  if (c.family == 2) {
    RnnConfig config;
    config.layers = 3;
    config.hidden = 1024;
    config.batch = 64;
    config.timesteps = 10;
    return BuildRnn(config);
  }
  MlpConfig config;
  config.layer_sizes = {1024, 2048, 1024, 256};
  config.batch = 128;
  return BuildMlp(config);
}

std::vector<SweepCase> Sweep() {
  std::vector<SweepCase> cases;
  for (int family = 0; family < 3; ++family) {
    for (int workers : {2, 4, 6, 8}) {
      const char* names[] = {"mlp", "wresnet", "rnn"};
      cases.push_back({StrFormat("%s_k%d", names[family], workers), family, workers});
    }
  }
  return cases;
}

class PipelineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(PipelineSweep, EndToEndInvariantsHold) {
  const SweepCase& c = GetParam();
  ModelGraph model = BuildCase(c);
  ValidateGraph(model.graph);

  PartitionPlan plan = Partitioner().Partition(model.graph, c.workers);
  ASSERT_EQ(plan.num_workers, c.workers);

  const ClusterSpec cluster = K80Cluster();
  SimGraph sim = LowerPartitioned(model.graph, plan, cluster,
                                  static_cast<double>(model.batch));
  ASSERT_EQ(sim.num_devices, c.workers);

  // (1) lowered transfer volume == analytic plan cost.
  double lowered = 0.0;
  std::vector<double> compute_per_device(static_cast<size_t>(c.workers), 0.0);
  for (const SimNode& n : sim.nodes) {
    if (n.kind == SimNode::Kind::kCompute) {
      compute_per_device[static_cast<size_t>(n.device)] += n.duration_s;
    } else {
      lowered += n.comm_bytes;
    }
  }
  EXPECT_NEAR(lowered, plan.total_comm_bytes, 0.02 * std::max(1.0, plan.total_comm_bytes))
      << c.name;

  // (2) resident state ~ 1/k (biases may replicate).
  PartitionPlan trivial;
  SimGraph single = LowerPartitioned(model.graph, trivial, cluster,
                                     static_cast<double>(model.batch));
  EXPECT_LT(sim.resident_bytes[0], single.resident_bytes[0] / c.workers * 1.6) << c.name;

  // (3) compute is balanced across workers (same shards everywhere).
  for (int d = 1; d < c.workers; ++d) {
    EXPECT_NEAR(compute_per_device[static_cast<size_t>(d)], compute_per_device[0],
                1e-9 * std::max(1.0, compute_per_device[0]))
        << c.name;
  }

  // (4) simulated timing sanity: full >= zero-comm >= serial-compute / k.
  SimResult full = RunSim(sim, cluster, {.zero_comm = false, .unlimited_memory = true});
  SimResult nocomm = RunSim(sim, cluster, {.zero_comm = true, .unlimited_memory = true});
  EXPECT_GE(full.makespan_s, nocomm.makespan_s - 1e-12) << c.name;
  EXPECT_GE(nocomm.makespan_s, compute_per_device[0] - 1e-9) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Models, PipelineSweep, ::testing::ValuesIn(Sweep()),
                         [](const ::testing::TestParamInfo<SweepCase>& info) {
                           return info.param.name;
                         });

TEST(Integration, AllAlgorithmsSurviveAllFamilies) {
  for (int family = 0; family < 3; ++family) {
    ModelGraph model = BuildCase({"x", family, 8});
    Partitioner partitioner;
    for (PartitionAlgorithm algorithm :
         {PartitionAlgorithm::kTofu, PartitionAlgorithm::kIcml18,
          PartitionAlgorithm::kEqualChop, PartitionAlgorithm::kSpartan,
          PartitionAlgorithm::kAllRowGreedy}) {
      PartitionPlan plan = partitioner.Partition(model.graph, 8, algorithm);
      EXPECT_GE(plan.total_comm_bytes, 0.0) << AlgorithmName(algorithm);
      ThroughputResult r = RunPlanThroughput(model, plan, K80Cluster());
      EXPECT_GT(r.iter_seconds, 0.0) << AlgorithmName(algorithm);
    }
  }
}

TEST(Integration, DpStaysExactOnPaperModels) {
  // The beam fallback must never trigger with full coarsening on the benchmark models.
  for (int family = 0; family < 3; ++family) {
    ModelGraph model = BuildCase({"x", family, 8});
    CoarseGraph cg = Coarsen(model.graph);
    StepContext ctx(model.graph, StepContext::InitialShapes(model.graph), 2);
    DpResult dp = RunStepDp(&ctx, cg, {});
    EXPECT_TRUE(dp.stats.exact) << "family " << family;
  }
}

}  // namespace
}  // namespace tofu
