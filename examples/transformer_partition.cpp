// Partitioning a workload the paper never saw: a transformer encoder. The TDL
// descriptions of batched matmul, softmax and layernorm were written once (see
// src/tofu/tdl/ops_attention.cc); everything else -- strategy discovery, the recursive
// DP, lowering -- is the unchanged machinery, which is exactly the point of analyzing
// operators instead of hand-tuning layers.
#include <cstdio>

#include "tofu/core/report.h"
#include "tofu/core/session.h"
#include "tofu/models/transformer.h"
#include "tofu/sim/runtimes.h"
#include "tofu/util/strings.h"

int main() {
  using namespace tofu;

  // A 4-layer encoder written for a single device.
  TransformerConfig config;
  config.batch = 32;
  config.seq_len = 128;
  config.d_model = 512;
  config.d_ff = 2048;
  config.heads = 4;
  config.layers = 4;
  ModelGraph model = BuildTransformer(config);
  std::printf("model: %s  (%d ops, %d tensors, %s of weights+grads+history)\n",
              model.name.c_str(), model.graph.num_ops(), model.graph.num_tensors(),
              HumanBytes(static_cast<double>(model.ModelStateBytes())).c_str());

  // Tofu's recursive search across 8 workers, through a session.
  Session session(DeviceTopology::FromCluster(K80Cluster()));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> response = session.Partition(request);
  if (!response.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n", response.status().ToString().c_str());
    return 1;
  }
  const PartitionPlan& plan = response->plan;
  std::printf("\n%s\n", PlanSummary(model.graph, plan).c_str());

  // How do the attention weights end up tiled? Note the projection weights sharding along
  // the model dimension -- the strategy data parallelism cannot express.
  for (TensorId w : model.graph.ParamIds()) {
    const TensorNode& t = model.graph.tensor(w);
    if (t.name.find("enc0/") == std::string::npos || t.rank() != 2) {
      continue;  // one block is representative; the others tile identically
    }
    std::printf("  %-16s %-12s tiled { %s }, shard %s per worker\n", t.name.c_str(),
                ShapeToString(t.shape).c_str(), plan.DescribeTiling(model.graph, w).c_str(),
                HumanBytes(static_cast<double>(plan.ShardBytes(model.graph, w))).c_str());
  }

  // Against classic data parallelism on the same graph (same session, second request).
  PartitionRequest dp_request = request;
  dp_request.algorithm = PartitionAlgorithm::kDataParallel;
  Result<PartitionResponse> dp = session.Partition(dp_request);
  if (!dp.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n", dp.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncommunication per iteration: Tofu %s vs DataParallel %s (%.2fx)\n",
              HumanBytes(plan.total_comm_bytes).c_str(),
              HumanBytes(dp->plan.total_comm_bytes).c_str(),
              dp->plan.total_comm_bytes / plan.total_comm_bytes);

  // Simulated execution on the paper's 8xK80 machine.
  ThroughputResult result = RunPlanThroughput(model, plan, K80Cluster());
  std::printf("simulated on 8 GPUs: %.1f samples/s, iteration %s, per-GPU peak %s%s\n",
              result.samples_per_second, HumanSeconds(result.iter_seconds).c_str(),
              HumanBytes(result.peak_bytes).c_str(), result.oom ? " (OOM!)" : "");
  return 0;
}
