// Training a very large CNN that cannot fit on one GPU (the paper's headline scenario):
// WResNet-101-8 carries ~31 GiB of weight state against a 12 GiB device. The example
// shows the OOM on a single GPU, then the 8-way Tofu partition that trains it, and
// compares against the swapping baseline.
#include <cstdio>

#include "tofu/core/experiment.h"
#include "tofu/core/report.h"
#include "tofu/core/session.h"
#include "tofu/util/strings.h"

int main() {
  using namespace tofu;
  const ClusterSpec cluster = K80Cluster();
  ModelFactory factory = WResNetFactory(/*layers=*/101, /*width=*/8);

  ModelGraph probe = factory(8);
  std::printf("WResNet-101-8: %s of weights+grads+history vs %s per GPU\n",
              HumanBytes(static_cast<double>(probe.ModelStateBytes())).c_str(),
              HumanBytes(cluster.gpu.mem_capacity).c_str());

  // A single GPU cannot hold it at any batch size.
  ThroughputResult small = SmallBatchThroughput(factory, 64, cluster);
  std::printf("single GPU (SmallBatch): %s\n", small.oom ? "OOM at every batch size" : "fits?!");

  // Swapping to host memory survives but crawls on the shared 10 GB/s link.
  ThroughputResult swap = SwapThroughput(factory, kWResNetIdealBatch, cluster);
  std::printf("swapping to host:        %.1f samples/s (%.0f%% stalled on the CPU link)\n",
              swap.samples_per_second, swap.comm_fraction * 100.0);

  // Tofu partitions every tensor: ~1/8 of the state per GPU, near-linear speedup.
  ThroughputResult tofu = TofuThroughput(factory, kWResNetIdealBatch, cluster);
  std::printf("Tofu across 8 GPUs:      %.1f samples/s at global batch %lld, peak %s/GPU\n\n",
              tofu.samples_per_second, static_cast<long long>(tofu.batch),
              HumanBytes(tofu.peak_bytes).c_str());

  // Show a slice of the discovered plan (Figure 11 style), through the session API. No
  // hard memory_budget_bytes here: the throughput run above already sized the batch to
  // the device, so the interesting figures are the response's liveness-aware peak
  // (peak_shard_bytes, what a budget would be checked against) next to its all-resident
  // upper bound (all_resident_bytes, every shard at once -- which a 30 GiB model can
  // legitimately exceed without OOMing).
  ModelGraph model = factory(tofu.batch);
  Session session(DeviceTopology::FromCluster(cluster));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> response = session.Partition(request);
  if (!response.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("per-worker peak %s (all-resident worst case %s) vs %s capacity "
              "(scheduled peak above: %s); estimated comm %s/iter\n",
              HumanBytes(static_cast<double>(response->peak_shard_bytes)).c_str(),
              HumanBytes(static_cast<double>(response->all_resident_bytes)).c_str(),
              HumanBytes(cluster.gpu.mem_capacity).c_str(),
              HumanBytes(tofu.peak_bytes).c_str(),
              HumanSeconds(response->estimated_comm_seconds).c_str());
  std::printf("discovered tilings (repeated blocks collapsed):\n%s",
              TilingReport(model.graph, response->plan).c_str());
  return 0;
}
