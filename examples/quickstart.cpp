// Quickstart: build a training graph, partition it across 8 workers, inspect the plan,
// and estimate its execution on the simulated 8-GPU machine.
//
//   $ ./quickstart
//
// The program written for one device runs across devices without changes -- the
// partitioner decides every tensor's tiling and every operator's strategy (paper §2).
#include <cstdio>

#include "tofu/core/partitioner.h"
#include "tofu/core/report.h"
#include "tofu/models/mlp.h"
#include "tofu/sim/runtimes.h"
#include "tofu/util/strings.h"

int main() {
  using namespace tofu;

  // 1. A model, exactly as one would write it for a single device: a 4-layer MLP with
  //    softmax cross-entropy, backward pass and Adagrad updates generated automatically.
  MlpConfig config;
  config.layer_sizes = {4096, 4096, 4096, 1000};
  config.batch = 256;
  ModelGraph model = BuildMlp(config);
  std::printf("model: %s  (%d ops, %d tensors, %s of weights+grads+history)\n",
              model.name.c_str(), model.graph.num_ops(), model.graph.num_tensors(),
              HumanBytes(static_cast<double>(model.ModelStateBytes())).c_str());

  // 2. Partition across 8 workers with Tofu's recursive search.
  Partitioner partitioner;
  PartitionPlan plan = partitioner.Partition(model.graph, 8);
  std::printf("\n%s\n", PlanSummary(model.graph, plan).c_str());

  // 3. Inspect a tensor's tiling: each recursive step split one dimension in two.
  for (TensorId w : model.graph.ParamIds()) {
    const TensorNode& t = model.graph.tensor(w);
    if (t.rank() == 2) {
      std::printf("  %-12s %-12s tiled { %s }, shard %s per worker\n", t.name.c_str(),
                  ShapeToString(t.shape).c_str(), plan.DescribeTiling(model.graph, w).c_str(),
                  HumanBytes(static_cast<double>(plan.ShardBytes(model.graph, w))).c_str());
    }
  }

  // 4. Estimate execution on the paper's 8xK80 machine.
  const ClusterSpec cluster = K80Cluster();
  ThroughputResult result = RunPlanThroughput(model, plan, cluster);
  std::printf("\nsimulated on 8 GPUs: %.1f samples/s, iteration %s, per-GPU peak %s%s\n",
              result.samples_per_second, HumanSeconds(result.iter_seconds).c_str(),
              HumanBytes(result.peak_bytes).c_str(), result.oom ? " (OOM!)" : "");
  std::printf("communication overhead: %.1f%% of the iteration\n",
              result.comm_fraction * 100.0);
  return 0;
}
