// Quickstart: build a training graph, open a partitioning Session against the paper's
// 8-GPU machine, inspect the response, and estimate execution in the simulator.
//
//   $ ./quickstart                        # partition, budget demo, simulate
//   $ ./quickstart --save-plan plan.json  # also serialize the discovered plan
//   $ ./quickstart --load-plan plan.json  # reload a saved plan and replay it, checking
//                                         # the totals match a fresh search bit-for-bit
//
// The program written for one device runs across devices without changes -- the session
// decides every tensor's tiling and every operator's strategy (paper §2), reports
// per-worker memory and per-step link times, and returns user mistakes (like an
// impossible memory budget) as recoverable errors instead of aborting.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "tofu/core/report.h"
#include "tofu/core/session.h"
#include "tofu/memory/schedule.h"
#include "tofu/models/mlp.h"
#include "tofu/partition/plan_io.h"
#include "tofu/sim/runtimes.h"
#include "tofu/util/json.h"
#include "tofu/util/strings.h"

int main(int argc, char** argv) {
  using namespace tofu;

  std::string save_path;
  std::string load_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--save-plan") == 0 && i + 1 < argc) {
      save_path = argv[++i];
    } else if (std::strcmp(argv[i], "--load-plan") == 0 && i + 1 < argc) {
      load_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: quickstart [--save-plan f] [--load-plan f]\n");
      return 2;
    }
  }

  // 1. A model, exactly as one would write it for a single device: a 4-layer MLP with
  //    softmax cross-entropy, backward pass and Adagrad updates generated automatically.
  MlpConfig config;
  config.layer_sizes = {4096, 4096, 4096, 1000};
  config.batch = 256;
  ModelGraph model = BuildMlp(config);
  std::printf("model: %s  (%d ops, %d tensors, %s of weights+grads+history)\n",
              model.name.c_str(), model.graph.num_ops(), model.graph.num_tensors(),
              HumanBytes(static_cast<double>(model.ModelStateBytes())).c_str());

  // 2. A session for the paper's 8xK80 machine: 8 workers, cross-group host link slower
  //    than intra-group PCIe p2p, 12 GB per GPU.
  const ClusterSpec cluster = K80Cluster();
  Session session(DeviceTopology::FromCluster(cluster));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> response = session.Partition(request);
  if (!response.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n", response.status().ToString().c_str());
    return 1;
  }
  const PartitionPlan& plan = response->plan;
  std::printf("\n%s", PlanSummary(model.graph, plan).c_str());
  std::printf("  per-worker shards: %s; per-step link time",
              HumanBytes(static_cast<double>(response->peak_shard_bytes)).c_str());
  for (size_t i = 0; i < response->step_seconds.size(); ++i) {
    std::printf("%s %s", i == 0 ? "" : " +", HumanSeconds(response->step_seconds[i]).c_str());
  }
  std::printf(" = %s\n\n", HumanSeconds(response->estimated_comm_seconds).c_str());

  // 3. Inspect a tensor's tiling: each recursive step split one dimension in two.
  for (TensorId w : model.graph.ParamIds()) {
    const TensorNode& t = model.graph.tensor(w);
    if (t.rank() == 2) {
      std::printf("  %-12s %-12s tiled { %s }, shard %s per worker\n", t.name.c_str(),
                  ShapeToString(t.shape).c_str(), plan.DescribeTiling(model.graph, w).c_str(),
                  HumanBytes(static_cast<double>(plan.ShardBytes(model.graph, w))).c_str());
    }
  }

  // 4. Memory budgets are a search constraint, not just a check: a 64 MiB per-worker
  //    budget -- below this plan's all-resident footprint -- still comes back Ok,
  //    because the search (and the liveness-aware peak) only has to fit the budget, not
  //    the sum of every shard.
  PartitionRequest tight = request;
  tight.memory_budget_bytes = 64ll << 20;
  Result<PartitionResponse> squeezed = session.Partition(tight);
  std::printf("\nwith a 64 MiB budget: %s\n",
              squeezed.ok()
                  ? StrFormat("fits (liveness-aware peak %s)",
                              HumanBytes(static_cast<double>(squeezed->peak_shard_bytes))
                                  .c_str())
                        .c_str()
                  : squeezed.status().ToString().c_str());
  if (!squeezed.ok() || squeezed->peak_shard_bytes > tight.memory_budget_bytes) {
    return 1;
  }

  //    A budget even the lightest all-resident configuration overflows used to be the
  //    end of the road. Now the search runs a repair pass (memory/repair.h): it keeps
  //    the min-comm plan and attaches a MemorySchedule that swaps some buffers to host
  //    or recomputes them, so the scheduled peak -- offloaded buffers charged only at
  //    the ops that touch them -- fits 32 MiB. The response prices the overhead two
  //    ways: analytically and replayed through the event simulator, with the replay
  //    guaranteed within [analytic, 2x analytic].
  PartitionRequest repaired_req = request;
  repaired_req.memory_budget_bytes = 32ll << 20;
  Result<PartitionResponse> repaired = session.Partition(repaired_req);
  if (!repaired.ok()) {
    std::fprintf(stderr, "32 MiB budget unexpectedly infeasible: %s\n",
                 repaired.status().ToString().c_str());
    return 1;
  }
  const MemorySchedule* schedule = repaired->plan.memory_schedule.get();
  if (schedule == nullptr || repaired->peak_shard_bytes > repaired_req.memory_budget_bytes) {
    std::fprintf(stderr, "32 MiB budget fit without a schedule?!\n");
    return 1;
  }
  int swapped = 0, recomputed = 0;
  for (const MemoryDecision& d : schedule->decisions) {
    if (d.residency == Residency::kSwap) ++swapped;
    if (d.residency == Residency::kRecompute) ++recomputed;
  }
  std::printf("with a 32 MiB budget: fits by offloading (%d swapped, %d recomputed; "
              "peak %s -> %s; overhead %s analytic, %s simulated)\n",
              swapped, recomputed,
              HumanBytes(static_cast<double>(schedule->baseline_peak_bytes)).c_str(),
              HumanBytes(static_cast<double>(repaired->peak_shard_bytes)).c_str(),
              HumanSeconds(repaired->memory_overhead_seconds).c_str(),
              HumanSeconds(repaired->simulated_memory_seconds).c_str());
  const double analytic = repaired->memory_overhead_seconds;
  const double simulated = repaired->simulated_memory_seconds;
  if (!(analytic > 0.0 && analytic <= simulated && simulated <= 2.0 * analytic)) {
    std::fprintf(stderr, "schedule replay out of bounds: analytic %.9g sim %.9g\n",
                 analytic, simulated);
    return 1;
  }

  //    A budget below the largest single operator's working set (the Adagrad update
  //    must see its weight, gradient, and history shards at once) is genuinely
  //    infeasible for ANY swap/recompute schedule, and the session says so -- with the
  //    deficit, the binding bound, and the minimum achievable peak -- instead of
  //    aborting the process.
  PartitionRequest impossible = request;
  impossible.memory_budget_bytes = 16ll << 20;
  Result<PartitionResponse> refused = session.Partition(impossible);
  std::printf("with a 16 MiB budget: %s\n",
              refused.ok() ? "unexpectedly fit?!" : refused.status().ToString().c_str());
  if (refused.ok()) {
    return 1;
  }

  // 5. Repeating a request hits the session's plan cache -- the search ran once.
  Result<PartitionResponse> repeat = session.Partition(request);
  std::printf("repeated request: %s (cache: %lld hit(s), %lld miss(es))\n",
              repeat.ok() && repeat->from_cache ? "served from plan cache" : "re-searched",
              static_cast<long long>(session.cache_stats().hits),
              static_cast<long long>(session.cache_stats().misses));

  // 6. Plans serialize: --save-plan writes JSON, --load-plan reloads it and replays it
  //    through the simulator, verifying the totals match a fresh search exactly.
  if (!save_path.empty()) {
    if (!WriteTextFile(save_path, PlanToJson(plan) + "\n")) {
      return 1;
    }
    std::printf("saved plan to %s\n", save_path.c_str());
  }
  if (!load_path.empty()) {
    Result<std::string> text = ReadTextFile(load_path);
    if (!text.ok()) {
      std::fprintf(stderr, "cannot read plan: %s\n", text.status().ToString().c_str());
      return 1;
    }
    Result<PartitionPlan> loaded = PlanFromJson(*text);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot parse plan: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    Status valid = ValidatePlanForGraph(model.graph, *loaded);
    if (!valid.ok()) {
      std::fprintf(stderr, "plan does not fit this graph: %s\n", valid.ToString().c_str());
      return 1;
    }
    ThroughputResult fresh_run = RunPlanThroughput(model, plan, cluster);
    ThroughputResult replay = RunPlanThroughput(model, *loaded, cluster);
    const bool identical = loaded->total_comm_bytes == plan.total_comm_bytes &&
                           loaded->weighted_step_costs == plan.weighted_step_costs &&
                           replay.iter_seconds == fresh_run.iter_seconds;
    std::printf("reloaded plan from %s: replay %s (comm %s, iteration %s)\n",
                load_path.c_str(), identical ? "matches the fresh search" : "DIVERGED",
                HumanBytes(loaded->total_comm_bytes).c_str(),
                HumanSeconds(replay.iter_seconds).c_str());
    if (!identical) {
      return 1;
    }
  }

  // 7. Estimate execution on the simulated machine.
  ThroughputResult result = RunPlanThroughput(model, plan, cluster);
  std::printf("\nsimulated on 8 GPUs: %.1f samples/s, iteration %s, per-GPU peak %s%s\n",
              result.samples_per_second, HumanSeconds(result.iter_seconds).c_str(),
              HumanBytes(result.peak_bytes).c_str(), result.oom ? " (OOM!)" : "");
  std::printf("communication overhead: %.1f%% of the iteration\n",
              result.comm_fraction * 100.0);
  return 0;
}
