// Partitioning a big LSTM language model (Jozefowicz-style, §7.1): compares Tofu against
// the operator-placement approach (one layer per GPU, pipelined) that preceded it, and
// shows why partitioning every operator keeps all GPUs busy where pipelining cannot.
#include <cstdio>

#include "tofu/core/experiment.h"
#include "tofu/core/report.h"
#include "tofu/core/session.h"
#include "tofu/util/strings.h"

int main() {
  using namespace tofu;
  const ClusterSpec cluster = K80Cluster();
  const int layers = 6;
  const std::int64_t hidden = 6144;
  ModelFactory factory = RnnFactory(layers, hidden);

  ModelGraph probe = factory(64);
  std::printf("RNN-%d-%lldK: %s of weight state, %d operators after unrolling 20 steps\n\n",
              layers, static_cast<long long>(hidden / 1024),
              HumanBytes(static_cast<double>(probe.ModelStateBytes())).c_str(),
              probe.graph.num_ops());

  ThroughputResult place = PlacementThroughput(factory, kRnnIdealBatch, cluster, RnnLayerOf);
  if (place.oom) {
    std::printf("op-placement (layer per GPU): OOM\n");
  } else {
    std::printf("op-placement (layer per GPU): %.1f samples/s -- pipeline bubbles leave\n"
                "                              GPUs idle between dependent layers\n",
                place.samples_per_second);
  }

  ThroughputResult tofu = TofuThroughput(factory, kRnnIdealBatch, cluster);
  std::printf("Tofu (operator partitioning): %.1f samples/s at global batch %lld\n\n",
              tofu.samples_per_second, static_cast<long long>(tofu.batch));

  // What did the search decide? Ask a session (which also weighs each step's bytes by
  // the link it crosses) and summarize the per-step choices.
  ModelGraph model = factory(tofu.batch);
  Session session(DeviceTopology::FromCluster(cluster));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> response = session.Partition(request);
  if (!response.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n", response.status().ToString().c_str());
    return 1;
  }
  const PartitionPlan& plan = response->plan;
  std::printf("%s(estimated comm time %s/iter on this topology)\n\n",
              PlanSummary(model.graph, plan).c_str(),
              HumanSeconds(response->estimated_comm_seconds).c_str());
  std::printf("example weight tilings:\n");
  int shown = 0;
  for (TensorId w : model.graph.ParamIds()) {
    const TensorNode& t = model.graph.tensor(w);
    if (t.rank() == 2 && shown < 4) {
      std::printf("  %-12s %-14s -> { %s }\n", t.name.c_str(),
                  ShapeToString(t.shape).c_str(),
                  plan.DescribeTiling(model.graph, w).c_str());
      ++shown;
    }
  }
  return 0;
}
