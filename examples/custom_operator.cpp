// Registering a custom operator with a TDL description -- the extension point the paper
// designs for ("operator developers write the description; Tofu discovers the partition
// strategies"). We register a 1-D dilated convolution, let the analyzer discover its
// strategies, show the paper's batched-Cholesky opaque example alongside, then partition
// a graph using the new operator through a Session -- and show what happens when a graph
// references an operator nobody registered (a recoverable error, not an abort).
#include <cstdio>

#include "tofu/core/session.h"
#include "tofu/tdl/registry.h"
#include "tofu/util/strings.h"

int main() {
  using namespace tofu;
  OpRegistry& registry = OpRegistry::Get();

  // A new operator in ~5 lines of description: dilated 1-D convolution.
  //   out[b, co, x] = sum_{ci, dx} data[b, ci, x + 2*dx] * filters[ci, co, dx]
  OpRegistry::OpTypeInfo info;
  info.name = "dilated_conv1d";
  info.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("dilated_conv1d", 2);
    IndexVar bb = b.Out("b"), co = b.Out("co"), x = b.Out("x");
    IndexVar ci = b.Red("ci"), dx = b.Red("dx");
    return std::move(b).Build(
        b.Sum({ci, dx}, b.In(0)({bb, ci, x + dx * 2.0}) * b.In(1)({ci, co, dx})));
  };
  info.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    return Shape{in[0][0], in[1][1], in[0][2] - 2 * (in[1][2] - 1)};
  };
  info.flops_fn = nullptr;
  info.op_class = OpClass::kConv;
  registry.Register(std::move(info));

  // The analyzer discovers every partition-n-reduce strategy automatically.
  const OpSemantics& sem = registry.Semantics("dilated_conv1d", {}, {3, 3});
  std::printf("dilated_conv1d: %zu strategies discovered\n", sem.strategies.size());
  for (const BasicStrategy& s : sem.strategies) {
    std::printf("  %s\n", s.ToString(sem.desc).c_str());
  }

  // Opaque operators (paper Figure 3): batched Cholesky partitions only on batch.
  const OpSemantics& chol = registry.Semantics("batch_cholesky", {}, {3});
  std::printf("\nbatch_cholesky (opaque): %zu strategy\n", chol.strategies.size());
  for (const BasicStrategy& s : chol.strategies) {
    std::printf("  %s\n", s.ToString(chol.desc).c_str());
  }

  // Concretize against real shapes to see halo sizes.
  const std::vector<std::int64_t> extents =
      BindVarExtents(sem.desc, {{32, 16, 128}, {16, 32, 3}}, {32, 32, 124});
  for (const BasicStrategy& s : sem.strategies) {
    if (s.var_name == "x") {
      ConcreteStrategy c = Concretize(s, extents);
      std::printf("\npartitioning along x needs a halo of %lld elements per boundary\n",
                  static_cast<long long>(c.inputs[0].halo_elems));
    }
  }

  // The operator is a first-class citizen of the partition search now: a graph using it
  // goes through the session API like any built-in.
  Graph graph;
  TensorId data = graph.AddInput("data", {32, 16, 128});
  TensorId filters = graph.AddParam("filters", {16, 32, 3});
  graph.AddOp("dilated_conv1d", {}, {data, filters}, "y");
  Session session(DeviceTopology::Uniform(4));
  PartitionRequest request;
  request.graph = &graph;
  Result<PartitionResponse> response = session.Partition(request);
  if (!response.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("\npartitioned a dilated_conv1d graph across 4 workers: data tiled { %s }, "
              "comm %s\n",
              response->plan.DescribeTiling(graph, data).c_str(),
              HumanBytes(response->plan.total_comm_bytes).c_str());

  // An operator nobody registered is a user error the session reports, not a crash:
  // simulate a graph arriving from elsewhere with an unknown type.
  graph.op(0).type = "fancy_future_op";
  Result<PartitionResponse> unknown = session.Partition(request);
  std::printf("partitioning a graph with an unregistered op: %s\n",
              unknown.ok() ? "unexpectedly succeeded?!" : unknown.status().ToString().c_str());
  return unknown.ok() ? 1 : 0;
}
