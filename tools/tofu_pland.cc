// tofu-pland: the concurrent planning daemon.
//
// Reads line-delimited JSON partition requests (docs/serving.md) from stdin and writes
// one tofu.serve.v1 response line per request to stdout, in input order; with --socket
// it serves the same protocol over a Unix domain socket instead. Requests are
// dispatched in batches across a fork-join thread pool onto per-topology thread-safe
// Sessions, so repeated and concurrent identical requests hit the sharded LRU plan
// cache or coalesce onto one in-flight search. On EOF a summary -- QPS, cache hit
// rate, p50/p99 latency -- is printed to stderr (human line plus a JSON line).
//
//   printf '{"model":"mlp","workers":8}\n' | tofu-pland --threads=8
//   tofu-pland --socket=/tmp/tofu-pland.sock   # then: nc -U /tmp/tofu-pland.sock
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "tofu/serve/server.h"

namespace {

constexpr const char* kUsage = R"(usage: tofu-pland [flags] < requests.jsonl > responses.jsonl

Flags:
  --threads=N         worker threads per batch (default 4)
  --search-threads=N  threads per partition search (default 0 = auto; plans are
                      byte-identical for any value)
  --batch=N           max requests dispatched per round (default 64)
  --cache-capacity=N  cached plans per topology session (default 256)
  --cache-shards=N    lock shards per plan cache (default 8)
  --algo=NAME         default algorithm for requests that omit "algorithm"
                      (Tofu | Hybrid | DataParallel | EqualChop | Spartan |
                      AllRow-Greedy | ICML18; default Tofu)
  --memory-policy=NAME  default repair policy for requests that omit
                      "memory_policy": what the search may do when no all-resident
                      plan fits the budget (auto | swap | recompute | none;
                      default auto)
  --no-plans          omit the "plan" member from response lines
  --socket=PATH       serve a Unix domain socket instead of stdin/stdout
  --quiet             suppress the stderr summary
  --help              this text
)";

bool ConsumeValue(const std::string& arg, const std::string& name,
                  std::string* value) {
  const std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

long ParseLong(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0) {
    std::fprintf(stderr, "tofu-pland: bad value for %s: '%s'\n", flag.c_str(),
                 text.c_str());
    std::exit(2);
  }
  return value;
}

}  // namespace

int main(int argc, char** argv) {
  tofu::StreamServerOptions options;
  std::string socket_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--no-plans") {
      options.include_plans = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (ConsumeValue(arg, "--threads", &value)) {
      options.threads = static_cast<int>(ParseLong("--threads", value));
    } else if (ConsumeValue(arg, "--search-threads", &value)) {
      options.service.search_threads =
          static_cast<int>(ParseLong("--search-threads", value));
    } else if (ConsumeValue(arg, "--batch", &value)) {
      options.batch_size = static_cast<size_t>(ParseLong("--batch", value));
    } else if (ConsumeValue(arg, "--cache-capacity", &value)) {
      options.service.max_cached_plans =
          static_cast<size_t>(ParseLong("--cache-capacity", value));
    } else if (ConsumeValue(arg, "--cache-shards", &value)) {
      options.service.cache_shards =
          static_cast<size_t>(ParseLong("--cache-shards", value));
    } else if (ConsumeValue(arg, "--algo", &value)) {
      tofu::Result<tofu::PartitionAlgorithm> algo = tofu::AlgorithmFromName(value);
      if (!algo.ok()) {
        std::fprintf(stderr, "tofu-pland: %s\n", algo.status().ToString().c_str());
        return 2;
      }
      options.default_algorithm = *algo;
    } else if (ConsumeValue(arg, "--memory-policy", &value)) {
      tofu::Result<tofu::MemoryPolicy> policy = tofu::MemoryPolicyFromName(value);
      if (!policy.ok()) {
        std::fprintf(stderr, "tofu-pland: %s\n", policy.status().ToString().c_str());
        return 2;
      }
      options.default_memory_policy = *policy;
    } else if (ConsumeValue(arg, "--socket", &value)) {
      socket_path = value;
    } else {
      std::fprintf(stderr, "tofu-pland: unknown flag '%s'\n%s", arg.c_str(), kUsage);
      return 2;
    }
  }

  tofu::StreamServer server(options);

  if (!socket_path.empty()) {
    const tofu::Status status = tofu::ServeUnixSocket(server, socket_path, std::cerr);
    std::fprintf(stderr, "tofu-pland: %s\n", status.ToString().c_str());
    return status.ok() ? 0 : 1;
  }

  const tofu::StreamServerMetrics metrics = server.Serve(std::cin, std::cout);
  if (!quiet) {
    std::cerr << metrics.Summary() << "\n" << metrics.ToJson() << std::endl;
  }
  return 0;
}
