// End-to-end smoke test for the tofu-pland binary, wired into CTest.
//
//   pland_smoke <path-to-tofu-pland>
//
// Pipes a small mixed batch (a duplicated MLP request, a tiny RNN, an unknown model,
// a malformed line, and a budget-constrained Hybrid request) through the daemon, then
// checks the stream contract: one response line per request, every line parses as
// schema tofu.serve.v1, each ok response's embedded plan replays through
// ValidatePlanForGraph against a freshly built graph, the duplicate is served without
// a second search (from_cache or coalesced), the hybrid response carries a real
// multi-stage tofu.plan.v3 pipeline, and the bad requests come back as recoverable
// errors, not a dead process. A second daemon run under --algo=Hybrid checks the
// default-algorithm flag routes requests that omit "algorithm". Exits non-zero with a
// message on the first violation.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "tofu/partition/plan_io.h"
#include "tofu/pipeline/pipeline_plan.h"
#include "tofu/serve/request.h"
#include "tofu/serve/server.h"
#include "tofu/util/json.h"

namespace {

[[noreturn]] void Fail(const std::string& message) {
  std::fprintf(stderr, "pland_smoke: FAIL: %s\n", message.c_str());
  std::exit(1);
}

void Check(bool ok, const std::string& message) {
  if (!ok) Fail(message);
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    if (end > start) lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: pland_smoke <path-to-tofu-pland>\n");
    return 2;
  }
  const std::string binary = argv[1];

  const std::string mlp_line =
      "{\"id\":1,\"model\":\"mlp\",\"workers\":4,"
      "\"config\":{\"batch\":16,\"layer_sizes\":[64,32,10]}}";
  const std::string mlp_dup_line =
      "{\"id\":2,\"model\":\"mlp\",\"workers\":4,"
      "\"config\":{\"batch\":16,\"layer_sizes\":[64,32,10]}}";
  const std::string rnn_line =
      "{\"id\":3,\"model\":\"rnn\",\"workers\":2,\"algorithm\":\"EqualChop\","
      "\"config\":{\"layers\":1,\"hidden\":32,\"batch\":4,\"timesteps\":2,"
      "\"embed\":16}}";
  const std::string bad_model_line = "{\"id\":4,\"model\":\"vgg\"}";
  const std::string malformed_line = "{\"id\":5,";
  // A budget no pure plan can meet on this narrow graph (its liveness floor is 192
  // bytes per worker at 32 workers) -- the hybrid search must answer with a
  // multi-stage pipeline plan (tests/test_pipeline.cc pins the stage goldens).
  const std::string hybrid_line =
      "{\"id\":6,\"model\":\"mlp\",\"workers\":32,\"algorithm\":\"Hybrid\","
      "\"memory_budget_bytes\":150,"
      "\"config\":{\"batch\":8,\"layer_sizes\":[4,4,4,4,4,4,4,4]}}";

  const std::string requests = mlp_line + "\n" + mlp_dup_line + "\n" + rnn_line +
                               "\n" + bad_model_line + "\n" + malformed_line + "\n" +
                               hybrid_line + "\n";
  Check(tofu::WriteTextFile("pland_smoke_requests.jsonl", requests),
        "cannot write request file");

  const std::string command = "\"" + binary +
                              "\" --threads=2 --quiet"
                              " < pland_smoke_requests.jsonl"
                              " > pland_smoke_responses.jsonl"
                              " 2> pland_smoke_stderr.txt";
  const int exit_code = std::system(command.c_str());
  Check(exit_code == 0,
        "tofu-pland exited with " + std::to_string(exit_code) + " for: " + command);

  tofu::Result<std::string> responses =
      tofu::ReadTextFile("pland_smoke_responses.jsonl");
  Check(responses.ok(), "cannot read response file");
  const std::vector<std::string> lines = SplitLines(*responses);
  Check(lines.size() == 6,
        "expected 6 response lines, got " + std::to_string(lines.size()));

  int cached_or_coalesced = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    tofu::Result<tofu::JsonValue> doc = tofu::ParseJson(lines[i]);
    Check(doc.ok(), "response line " + std::to_string(i) + " is not valid JSON: " +
                        doc.status().ToString());
    tofu::Result<std::string> schema = doc->StringAt("schema");
    Check(schema.ok() && *schema == tofu::kServeJsonSchema,
          "response line " + std::to_string(i) + " has wrong schema");
    tofu::Result<bool> ok_field = doc->BoolAt("ok");
    Check(ok_field.ok(), "response line " + std::to_string(i) + " lacks 'ok'");
    tofu::Result<std::int64_t> id = doc->IntAt("id");
    Check(id.ok(), "response line " + std::to_string(i) + " lacks 'id'");

    if (*id == 1 || *id == 2 || *id == 3) {
      // Valid requests: response order matches input order and the embedded plan
      // replays against a freshly built graph of the same spec.
      Check(*ok_field, "request id " + std::to_string(*id) + " unexpectedly failed: " +
                           lines[i]);
      Check(static_cast<std::int64_t>(i) + 1 == *id,
            "responses out of input order at line " + std::to_string(i));
      const tofu::JsonValue* plan_json = doc->Find("plan");
      Check(plan_json != nullptr, "ok response without a plan member");
      tofu::Result<tofu::PartitionPlan> plan =
          tofu::PlanFromJson(tofu::JsonToString(*plan_json));
      Check(plan.ok(), "embedded plan does not parse as tofu.plan.v2: " +
                           plan.status().ToString());

      const std::string& request_line =
          *id == 1 ? mlp_line : (*id == 2 ? mlp_dup_line : rnn_line);
      tofu::Result<tofu::ServeRequest> request =
          tofu::ParseServeRequest(request_line);
      Check(request.ok(), "request line stopped parsing");
      tofu::Result<tofu::ModelGraph> model = tofu::BuildServeModel(*request);
      Check(model.ok(), "model build failed");
      const tofu::Status valid =
          tofu::ValidatePlanForGraph(model->graph, *plan);
      Check(valid.ok(),
            "embedded plan does not validate against its graph: " + valid.ToString());

      tofu::Result<bool> from_cache = doc->BoolAt("from_cache");
      tofu::Result<bool> coalesced = doc->BoolAt("coalesced");
      Check(from_cache.ok() && coalesced.ok(), "ok response lacks cache flags");
      if ((*id == 1 || *id == 2) && (*from_cache || *coalesced)) {
        ++cached_or_coalesced;
      }
    } else if (*id == 6) {
      // The hybrid request: a tofu.plan.v3 document whose pipeline section names at
      // least two stages, each fitting the request's budget, valid against the graph.
      Check(*ok_field, "hybrid request unexpectedly failed: " + lines[i]);
      tofu::Result<std::string> algo = doc->StringAt("algorithm");
      Check(algo.ok() && *algo == "Hybrid", "hybrid response misreports algorithm");
      const tofu::JsonValue* plan_json = doc->Find("plan");
      Check(plan_json != nullptr, "hybrid response without a plan member");
      const std::string plan_text = tofu::JsonToString(*plan_json);
      Check(plan_text.find("tofu.plan.v3") != std::string::npos,
            "hybrid plan is not tagged tofu.plan.v3");
      tofu::Result<tofu::PartitionPlan> plan = tofu::PlanFromJson(plan_text);
      Check(plan.ok(),
            "embedded hybrid plan does not parse: " + plan.status().ToString());
      Check(plan->pipeline != nullptr && plan->pipeline->num_stages >= 2,
            "hybrid plan does not carry a multi-stage pipeline");
      for (const tofu::PipelineStage& stage : plan->pipeline->stages) {
        Check(stage.peak_bytes <= 150, "a pipeline stage exceeds the request budget");
      }
      tofu::Result<tofu::ServeRequest> request =
          tofu::ParseServeRequest(hybrid_line);
      Check(request.ok(), "hybrid request line stopped parsing");
      tofu::Result<tofu::ModelGraph> model = tofu::BuildServeModel(*request);
      Check(model.ok(), "hybrid model build failed");
      const tofu::Status valid = tofu::ValidatePlanForGraph(model->graph, *plan);
      Check(valid.ok(), "hybrid plan does not validate: " + valid.ToString());
    } else if (*id == 4) {
      Check(!*ok_field, "unknown model unexpectedly succeeded");
      tofu::Result<std::string> code = doc->StringAt("code");
      Check(code.ok() && *code == "INVALID_ARGUMENT",
            "unknown model should be INVALID_ARGUMENT, got line: " + lines[i]);
    } else if (*id == -1) {
      Check(!*ok_field, "malformed line unexpectedly succeeded");
    } else {
      Fail("unexpected response id " + std::to_string(*id));
    }
  }
  // The duplicated MLP spec must not pay for a second search: whichever of id 1/2
  // lost the race is a cache hit or a coalesced rider.
  Check(cached_or_coalesced >= 1,
        "duplicate request was answered by a second search");

  // Second run: --algo=Hybrid must route a request that omits "algorithm" through the
  // hybrid search (same budget-constrained spec, no algorithm field, same pipeline).
  const std::string defaulted_line =
      "{\"id\":1,\"model\":\"mlp\",\"workers\":32,\"memory_budget_bytes\":150,"
      "\"config\":{\"batch\":8,\"layer_sizes\":[4,4,4,4,4,4,4,4]}}";
  Check(tofu::WriteTextFile("pland_smoke_algo_requests.jsonl", defaulted_line + "\n"),
        "cannot write --algo request file");
  const std::string algo_command = "\"" + binary +
                                   "\" --threads=2 --quiet --algo=Hybrid"
                                   " < pland_smoke_algo_requests.jsonl"
                                   " > pland_smoke_algo_responses.jsonl"
                                   " 2>> pland_smoke_stderr.txt";
  Check(std::system(algo_command.c_str()) == 0, "tofu-pland --algo=Hybrid failed");
  tofu::Result<std::string> algo_responses =
      tofu::ReadTextFile("pland_smoke_algo_responses.jsonl");
  Check(algo_responses.ok(), "cannot read --algo response file");
  const std::vector<std::string> algo_lines = SplitLines(*algo_responses);
  Check(algo_lines.size() == 1, "expected 1 response line from the --algo run");
  tofu::Result<tofu::JsonValue> algo_doc = tofu::ParseJson(algo_lines[0]);
  Check(algo_doc.ok(), "--algo response is not valid JSON");
  tofu::Result<bool> algo_ok = algo_doc->BoolAt("ok");
  Check(algo_ok.ok() && *algo_ok, "--algo=Hybrid request failed: " + algo_lines[0]);
  tofu::Result<std::string> algo_name = algo_doc->StringAt("algorithm");
  Check(algo_name.ok() && *algo_name == "Hybrid",
        "--algo=Hybrid did not route the defaulted request to the hybrid search");
  const tofu::JsonValue* algo_plan = algo_doc->Find("plan");
  Check(algo_plan != nullptr &&
            tofu::JsonToString(*algo_plan).find("tofu.plan.v3") != std::string::npos,
        "--algo=Hybrid response does not carry a v3 pipeline plan");

  std::printf("pland_smoke: OK (7 responses validated)\n");
  return 0;
}
