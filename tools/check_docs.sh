#!/usr/bin/env bash
# Docs drift check: every operator registered in src/tofu/tdl/ops_*.cc must be documented
# in docs/tdl.md (as a backticked `name`), and every partition-algorithm name returned by
# AlgorithmName (src/tofu/core/session.cc) must appear in both docs/serving.md and
# docs/api.md. Run from anywhere; exits non-zero listing the drift. CI runs this on every
# push (see .github/workflows/ci.yml).
set -u
repo="$(cd "$(dirname "$0")/.." && pwd)"
doc="$repo/docs/tdl.md"

if [[ ! -f "$doc" ]]; then
  echo "check_docs: missing $doc" >&2
  exit 1
fi

# Registration idioms: `xx.name = "op";` for hand-rolled OpTypeInfo, and
# `RegisterElementwise(registry, "op", arity)` for the element-wise family.
ops=$(
  {
    grep -hoE '\.name = "[a-z0-9_]+"' "$repo"/src/tofu/tdl/ops_*.cc |
      sed -E 's/.*"([a-z0-9_]+)"/\1/'
    grep -hoE 'RegisterElementwise\(registry, "[a-z0-9_]+"' "$repo"/src/tofu/tdl/ops_*.cc |
      sed -E 's/.*"([a-z0-9_]+)"?/\1/'
  } | sort -u
)

if [[ -z "$ops" ]]; then
  echo "check_docs: found no registered ops under src/tofu/tdl/ -- pattern drift?" >&2
  exit 1
fi

missing=0
total=0
for op in $ops; do
  total=$((total + 1))
  if ! grep -q "\`$op\`" "$doc"; then
    echo "check_docs: op '$op' is registered but not documented in docs/tdl.md" >&2
    missing=$((missing + 1))
  fi
done

if [[ $missing -gt 0 ]]; then
  echo "check_docs: $missing of $total registered ops missing from docs/tdl.md" >&2
  exit 1
fi
echo "check_docs: all $total registered ops documented in docs/tdl.md"

# Every algorithm name AlgorithmName can return must be documented in the serving
# protocol doc and the session API doc (both carry an algorithm table).
session_cc="$repo/src/tofu/core/session.cc"
algos=$(
  sed -n '/AlgorithmName(PartitionAlgorithm/,/^}/p' "$session_cc" |
    grep -oE 'return "[A-Za-z0-9-]+"' | sed -E 's/return "(.+)"/\1/' |
    grep -v '^?$' | sort -u
)

if [[ -z "$algos" ]]; then
  echo "check_docs: found no algorithm names in $session_cc -- pattern drift?" >&2
  exit 1
fi

algo_missing=0
algo_total=0
for algo in $algos; do
  algo_total=$((algo_total + 1))
  for adoc in "$repo/docs/serving.md" "$repo/docs/api.md"; do
    if ! grep -q "$algo" "$adoc"; then
      echo "check_docs: algorithm '$algo' is not documented in ${adoc#"$repo"/}" >&2
      algo_missing=$((algo_missing + 1))
    fi
  done
done

if [[ $algo_missing -gt 0 ]]; then
  echo "check_docs: $algo_missing algorithm doc entries missing" >&2
  exit 1
fi
echo "check_docs: all $algo_total algorithm names documented in docs/serving.md and docs/api.md"

# The memory-planner doc must exist and be cross-linked from the docs that reference
# its machinery: search (the repair pass runs inside the search), cost model (swap and
# recompute pricing), and the session API (MemorySchedule in plan JSON + responses).
memdoc="$repo/docs/memory.md"
if [[ ! -f "$memdoc" ]]; then
  echo "check_docs: missing $memdoc (memory-planner doc)" >&2
  exit 1
fi

link_missing=0
for ldoc in "$repo/docs/search.md" "$repo/docs/cost_model.md" "$repo/docs/api.md"; do
  if ! grep -q 'memory\.md' "$ldoc"; then
    echo "check_docs: ${ldoc#"$repo"/} does not link to docs/memory.md" >&2
    link_missing=$((link_missing + 1))
  fi
done
if [[ $link_missing -gt 0 ]]; then
  echo "check_docs: $link_missing docs missing the memory.md cross-link" >&2
  exit 1
fi
echo "check_docs: docs/memory.md present and cross-linked from search, cost_model, api"
