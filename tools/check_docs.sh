#!/usr/bin/env bash
# Docs drift check: every operator registered in src/tofu/tdl/ops_*.cc must be documented
# in docs/tdl.md (as a backticked `name`). Run from anywhere; exits non-zero listing the
# undocumented ops. CI runs this on every push (see .github/workflows/ci.yml).
set -u
repo="$(cd "$(dirname "$0")/.." && pwd)"
doc="$repo/docs/tdl.md"

if [[ ! -f "$doc" ]]; then
  echo "check_docs: missing $doc" >&2
  exit 1
fi

# Registration idioms: `xx.name = "op";` for hand-rolled OpTypeInfo, and
# `RegisterElementwise(registry, "op", arity)` for the element-wise family.
ops=$(
  {
    grep -hoE '\.name = "[a-z0-9_]+"' "$repo"/src/tofu/tdl/ops_*.cc |
      sed -E 's/.*"([a-z0-9_]+)"/\1/'
    grep -hoE 'RegisterElementwise\(registry, "[a-z0-9_]+"' "$repo"/src/tofu/tdl/ops_*.cc |
      sed -E 's/.*"([a-z0-9_]+)"?/\1/'
  } | sort -u
)

if [[ -z "$ops" ]]; then
  echo "check_docs: found no registered ops under src/tofu/tdl/ -- pattern drift?" >&2
  exit 1
fi

missing=0
total=0
for op in $ops; do
  total=$((total + 1))
  if ! grep -q "\`$op\`" "$doc"; then
    echo "check_docs: op '$op' is registered but not documented in docs/tdl.md" >&2
    missing=$((missing + 1))
  fi
done

if [[ $missing -gt 0 ]]; then
  echo "check_docs: $missing of $total registered ops missing from docs/tdl.md" >&2
  exit 1
fi
echo "check_docs: all $total registered ops documented in docs/tdl.md"
