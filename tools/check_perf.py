#!/usr/bin/env python3
"""Gate on bench_table1_search --json results against a checked-in baseline.

Usage: check_perf.py <baseline.json> <current.json> [--max-slowdown X]
                     [--min-speedup X] [--serve serve.json]

Fails (exit 1) when:
  * a baseline model has no matching row in the current results (dropping or renaming
    a model must not silently disable its gate);
  * the recursive search wall time regressed more than --max-slowdown (default 3x)
    over the baseline -- loose enough to absorb CI machine variance, tight enough to
    catch an accidental return to the string-keyed search;
  * with --min-speedup, a row whose baseline entry records pre_pr_recursive_seconds
    (the wall time measured before the dense-lattice engine path landed, same best-of-3
    methodology) is not at least that factor faster now -- the floor under the
    big-graph, many-worker optimization, so it cannot silently rot away;
  * the machine-independent search-effort counters (states_explored,
    cost_table_entries, dominated_pruned_states, pruned_table_cells) drifted -- these
    are deterministic, so any change means the search semantics changed without
    re-recording the baseline;
  * the plan's communication bytes changed at all (same reasoning);
  * the unconstrained plan itself drifted: plan_digest is an FNV-1a fingerprint of the
    normalized plan JSON (cuts, strategies, costs, per-step peaks -- everything but the
    search wall time), so the gate catches a changed plan even when its comm total
    happens to be unchanged, keeping the no-budget search path bit-identical;
  * an exact search became beam-degraded;
  * the Session plan cache did not hit on a repeated identical request, or the cached
    plan was not byte-identical to a fresh session's plan (the serving-path contract of
    core/session.h -- fields session_cache_hit / cached_plan_identical in the bench
    JSON; their absence also fails, so the gate cannot be disabled by dropping them);
  * a topology row's simulated critical path undercuts its analytic estimate -- the
    congestion/dilation number is a lower bound on any schedule (interconnect/
    interconnect.h), so sim < estimate means one of the two models broke;
  * a hybrid row (bench_table1_search's multi-node hierarchy comparison) breaks the
    hybrid-parallelism contract: the hybrid plan's estimated total time must not
    exceed pure Tofu's or DataParallel's on the same topology, it must STRICTLY beat
    pure Tofu for Transformer-48 at >= 32 workers (the regime ROADMAP item 3 exists
    for), and a multi-stage pipeline's analytic 1F1B makespan must lower-bound the
    1F1B event simulation while staying within 2x of it (the pipeline differential
    contract, pipeline/pipeline_sim.h);
  * a memory-frontier row (bench_table1_search's budget-ladder sweep, model names
    ending in @frontier) breaks the memory-planner contract (memory/repair.h): its
    schedule-free plan digest or its deterministic peak bytes drifted from the
    baseline; a budget at or above the full-offload floor came back infeasible (the
    repair pass must always find a schedule there) or one below the floor came back
    feasible; a feasible point's scheduled peak exceeds its budget; tightening the
    budget DECREASED the analytic swap+recompute overhead (the prefix-greedy repair
    marks supersets as budgets shrink, so overhead must be monotone); or a point's
    event-replayed overhead falls outside [analytic, 2x analytic];
  * with --serve, the bench_serve --json results show a nondeterministic plan, any
    request error, cache counters that do not add up to the request count, or a final
    hit rate below --min-hit-rate (the serve-path contract: a replayed spec mix must be
    served almost entirely from the plan cache).
"""
import argparse
import json
import sys


def check_serve(path: str, min_hit_rate: float) -> bool:
    """Gate bench_serve --json output; returns True on failure."""
    with open(path) as f:
        serve = json.load(f)
    failed = False
    if serve.get("deterministic") is not True:
        print(
            f"FAIL  serve: deterministic is {serve.get('deterministic')!r} (concurrent "
            "plans must be byte-identical to fresh single-threaded searches)"
        )
        failed = True
    runs = serve.get("runs", [])
    if not runs:
        print("FAIL  serve: no runs in the serve results")
        failed = True
    for run in runs:
        label = f"serve threads={run.get('threads')}"
        if run.get("errors", 1) != 0:
            print(f"FAIL  {label}: {run.get('errors')} request errors")
            failed = True
        served = run.get("hits", 0) + run.get("misses", 0) + run.get("coalesced", 0)
        if served != serve.get("requests"):
            print(
                f"FAIL  {label}: hits+misses+coalesced = {served} != requests "
                f"{serve.get('requests')} (every validated request must be a hit, a "
                "miss, or a coalesced wait -- core/session.h PlanCacheStats)"
            )
            failed = True
    if runs:
        final = runs[-1]
        rate = final.get("hit_rate", 0.0)
        status = "ok" if rate >= min_hit_rate else f"FAIL (< {min_hit_rate})"
        print(f"serve threads={final.get('threads')}: hit rate {rate:.3f} {status}")
        if rate < min_hit_rate:
            failed = True
    return failed


def check_frontier_row(row: dict, base: dict | None) -> bool:
    """Gate one @frontier row from the memory-budget ladder; returns True on failure."""
    label = row["model"]
    failed = False
    if base is not None:
        for field in (
            "schedule_free_digest",
            "unconstrained_peak_bytes",
            "min_achievable_peak_bytes",
        ):
            if field in base and row.get(field) != base[field]:
                print(
                    f"FAIL  {label}: {field} {row.get(field)!r} != baseline "
                    f"{base[field]!r} (the schedule-free plan or the deterministic "
                    "memory accounting drifted; re-record the baseline if intentional)"
                )
                failed = True
    points = row.get("frontier", [])
    if not points:
        print(f"FAIL  {label}: frontier row has no budget points")
        return True
    floor = row.get("min_achievable_peak_bytes", 0)
    prev_overhead = None
    for point in points:  # emitted in decreasing-budget order
        budget = point["budget_bytes"]
        tag = f"{label} @ {budget} B"
        if budget >= floor and not point["feasible"]:
            print(
                f"FAIL  {tag}: infeasible at or above the full-offload floor "
                f"{floor} B (the repair pass must always find a schedule there)"
            )
            failed = True
        if budget < floor and point["feasible"]:
            print(
                f"FAIL  {tag}: feasible below the full-offload floor {floor} B "
                "(no schedule can fit a single op's working set)"
            )
            failed = True
        if not point["feasible"]:
            continue
        if point["peak_shard_bytes"] > budget:
            print(
                f"FAIL  {tag}: scheduled peak {point['peak_shard_bytes']} B exceeds "
                "the budget it was repaired to"
            )
            failed = True
        overhead = point["memory_overhead_seconds"]
        sim = point["simulated_memory_seconds"]
        if prev_overhead is not None and overhead < prev_overhead * (1.0 - 1e-9):
            print(
                f"FAIL  {tag}: overhead {overhead:.6g}s < {prev_overhead:.6g}s at the "
                "looser budget above it (prefix-greedy repair marks supersets as the "
                "budget tightens, so overhead must be monotone)"
            )
            failed = True
        prev_overhead = max(prev_overhead or 0.0, overhead)
        if overhead > 0.0 and not (
            overhead * (1.0 - 1e-9) <= sim <= overhead * 2.0 * (1.0 + 1e-9)
        ):
            print(
                f"FAIL  {tag}: replayed overhead {sim:.6g}s outside [1x, 2x] of the "
                f"analytic {overhead:.6g}s (memory/sim_replay.h differential contract)"
            )
            failed = True
    feasible = [p for p in points if p["feasible"]]
    print(
        f"{label}: {len(feasible)}/{len(points)} budgets feasible, overhead "
        f"{feasible[0]['memory_overhead_seconds']*1e3:.1f} -> "
        f"{feasible[-1]['memory_overhead_seconds']*1e3:.1f} ms "
        f"{'FAIL' if failed else 'ok'}"
    )
    return failed


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--max-slowdown", type=float, default=3.0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="minimum speedup vs a baseline row's pre_pr_recursive_seconds "
        "(rows without that field are exempt)",
    )
    parser.add_argument("--serve", help="bench_serve --json output to gate")
    parser.add_argument("--min-hit-rate", type=float, default=0.9)
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    base_by_model = {r["model"]: r for r in baseline["results"]}
    current_models = {r["model"] for r in current["results"]}
    failed = False
    for missing in sorted(set(base_by_model) - current_models):
        print(f"FAIL  {missing}: in baseline but absent from current results")
        failed = True
    for row in current["results"]:
        if "frontier" in row:
            # Memory-budget ladder rows have their own contract (and no search-timing
            # or serving-path fields), so the generic gates below do not apply.
            if check_frontier_row(row, base_by_model.get(row["model"])):
                failed = True
            continue
        # The serving-path flags gate every current row, baseline entry or not --
        # dropping or renaming a model must not disable them.
        for flag in ("session_cache_hit", "cached_plan_identical"):
            if row.get(flag) is not True:
                print(
                    f"FAIL  {row['model']}: {flag} is {row.get(flag)!r} (repeated "
                    "requests must be served from the plan cache with a byte-identical "
                    "plan)"
                )
                failed = True
        base = base_by_model.get(row["model"])
        if base is None:
            print(f"NOTE  {row['model']}: not in baseline, skipping timing gates")
            continue
        slowdown = row["recursive_seconds"] / max(base["recursive_seconds"], 1e-12)
        status = "ok"
        if slowdown > args.max_slowdown:
            status = f"FAIL (> {args.max_slowdown}x baseline)"
            failed = True
        print(
            f"{row['model']}: {row['recursive_seconds']*1e3:.1f} ms vs baseline "
            f"{base['recursive_seconds']*1e3:.1f} ms ({slowdown:.2f}x) {status}"
        )
        pre_pr = base.get("pre_pr_recursive_seconds")
        if args.min_speedup is not None and pre_pr is not None:
            speedup = pre_pr / max(row["recursive_seconds"], 1e-12)
            status = "ok"
            if speedup < args.min_speedup:
                status = f"FAIL (< required {args.min_speedup}x)"
                failed = True
            print(
                f"{row['model']}: {speedup:.2f}x faster than pre-PR "
                f"{pre_pr*1e3:.1f} ms {status}"
            )
        for counter in (
            "states_explored",
            "cost_table_entries",
            "dominated_pruned_states",
            "pruned_table_cells",
        ):
            if row.get(counter) != base.get(counter):
                print(
                    f"FAIL  {row['model']}: {counter} {row.get(counter)} != baseline "
                    f"{base.get(counter)} (search semantics drifted; re-record the "
                    "baseline if intentional)"
                )
                failed = True
        if row["recursive_comm_bytes"] != base["recursive_comm_bytes"]:
            print(
                f"FAIL  {row['model']}: comm bytes {row['recursive_comm_bytes']} != "
                f"baseline {base['recursive_comm_bytes']} (plan drifted; re-record the "
                "baseline if intentional)"
            )
            failed = True
        if "plan_digest" in base and row.get("plan_digest") != base["plan_digest"]:
            print(
                f"FAIL  {row['model']}: plan_digest {row.get('plan_digest')!r} != "
                f"baseline {base['plan_digest']!r} (the unconstrained plan is no longer "
                "bit-identical; re-record the baseline if intentional)"
            )
            failed = True
        if base.get("exact", True) and not row.get("exact", True):
            print(f"FAIL  {row['model']}: search became beam-degraded")
            failed = True
    for row in current["results"]:
        est = row.get("estimated_comm_seconds")
        sim = row.get("simulated_comm_seconds")
        if est and sim and sim < est * (1.0 - 1e-9):
            print(
                f"FAIL  {row['model']}: simulated comm {sim:.6g}s < analytic estimate "
                f"{est:.6g}s (the estimate is a lower bound on any schedule)"
            )
            failed = True
    for row in current["results"]:
        # Hybrid-parallelism ordering gates (rows emitted by RunHybrid).
        hybrid = row.get("hybrid_total_seconds")
        if hybrid is None:
            continue
        pure = row.get("pure_total_seconds", 0.0)
        dp = row.get("dp_total_seconds", 0.0)
        label = row["model"]
        if hybrid > pure * (1.0 + 1e-9):
            print(
                f"FAIL  {label}: hybrid total {hybrid:.6g}s > pure-Tofu total "
                f"{pure:.6g}s (the hybrid search must never lose to its own S=1 "
                "candidate)"
            )
            failed = True
        if hybrid > dp * (1.0 + 1e-9):
            print(
                f"FAIL  {label}: hybrid total {hybrid:.6g}s > DataParallel total "
                f"{dp:.6g}s"
            )
            failed = True
        strict = label.startswith("Transformer-48") and row.get("workers", 0) >= 32
        if strict and not hybrid < pure:
            print(
                f"FAIL  {label}: hybrid total {hybrid:.6g}s does not strictly beat "
                f"pure Tofu {pure:.6g}s (Transformer-48 at >= 32 workers on the "
                "oversubscribed hierarchy is the regime hybrid parallelism exists for)"
            )
            failed = True
        analytic = row.get("pipeline_seconds", 0.0)
        sim_1f1b = row.get("pipeline_sim_seconds", 0.0)
        if analytic > 0.0:
            if sim_1f1b < analytic * (1.0 - 1e-9):
                print(
                    f"FAIL  {label}: 1F1B simulation {sim_1f1b:.6g}s < analytic "
                    f"makespan {analytic:.6g}s (the analytic cost is a lower bound on "
                    "any 1F1B schedule)"
                )
                failed = True
            if sim_1f1b > analytic * 2.0:
                print(
                    f"FAIL  {label}: 1F1B simulation {sim_1f1b:.6g}s > 2x analytic "
                    f"makespan {analytic:.6g}s (the analytic model lost touch with "
                    "the schedule it prices)"
                )
                failed = True
        print(
            f"{label}: hybrid {hybrid*1e3:.1f} ms (S={row.get('pipeline_stages')}) vs "
            f"pure {pure*1e3:.1f} ms vs DP {dp*1e3:.1f} ms"
        )
    if args.serve and check_serve(args.serve, args.min_hit_rate):
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
